//! # dc-baselines
//!
//! The incremental-clustering baselines the paper compares DynamicC against
//! (§7.1 "Comparison"):
//!
//! * [`Naive`] — assigns every new (or updated) object to the existing
//!   cluster it is most similar to, or to a fresh singleton when nothing is
//!   similar enough.  It never restructures existing clusters and never
//!   consults the objective function, so it is extremely fast but its
//!   quality decays as the clustering structure drifts (exactly the
//!   behaviour Figure 6 and Table 2 show).
//! * [`Greedy`] — the state-of-the-art incremental method of Gruenheid
//!   et al. (VLDB 2014), re-implemented from its published operator
//!   description: restrict attention to the clusters *affected* by this
//!   round's changes (the clusters of touched objects plus their graph
//!   neighbours), then greedily apply the best improving merge / split /
//!   move among them until no operation improves the objective.  It reaches
//!   nearly-batch quality but evaluates many candidate operations per round,
//!   which is the latency gap DynamicC exploits.
//!
//! Both baselines implement the common [`IncrementalClusterer`] trait, as
//! does DynamicC itself (in `dc-core`), so the benchmark harness can drive
//! all methods through one interface.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod greedy;
pub mod naive;
pub mod traits;

pub use greedy::{Greedy, GreedyConfig};
pub use naive::{Naive, NaiveConfig};
pub use traits::{prepare_working_clustering, IncrementalClusterer};
