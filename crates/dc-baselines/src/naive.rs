//! The Naive incremental baseline.
//!
//! "This is the baseline incremental algorithm.  It compares each new object
//! with existing clusters and then assigns an object to the closest cluster
//! or a new cluster.  This method does not compute the objective score for
//! the clustering.  Its decisions are only based on heuristics such as
//! similarity threshold." (§7.1)

use crate::traits::{prepare_working_clustering, IncrementalClusterer};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId, OperationBatch};

/// Configuration for [`Naive`].
#[derive(Debug, Clone, Copy)]
pub struct NaiveConfig {
    /// Minimum average similarity between an object and a cluster for the
    /// object to join it; below this the object stays a singleton.
    pub join_threshold: f64,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            join_threshold: 0.5,
        }
    }
}

/// Closest-cluster assignment without any structural re-clustering.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive {
    config: NaiveConfig,
}

impl Naive {
    /// Create a Naive baseline.
    pub fn new(config: NaiveConfig) -> Self {
        Naive { config }
    }

    /// The best existing cluster for an object: the one with the largest
    /// average similarity to it (computed over stored edges).
    fn best_cluster_for(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        own_cluster: ClusterId,
    ) -> Option<(ClusterId, f64)> {
        let mut candidates: std::collections::BTreeSet<ClusterId> =
            std::collections::BTreeSet::new();
        for (n, _) in graph.neighbors(oid) {
            if let Some(cid) = clustering.cluster_of(n) {
                if cid != own_cluster {
                    candidates.insert(cid);
                }
            }
        }
        let mut best: Option<(ClusterId, f64)> = None;
        for cid in candidates {
            let avg = ClusterAggregates::object_to_cluster_avg(graph, clustering, oid, cid);
            if best.is_none_or(|(_, b)| avg > b) {
                best = Some((cid, avg));
            }
        }
        best
    }
}

impl IncrementalClusterer for Naive {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn recluster(
        &mut self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
    ) -> Clustering {
        let (mut working, isolated) = prepare_working_clustering(graph, previous, batch);
        for oid in isolated {
            let own = working
                .cluster_of(oid)
                .expect("isolated objects are singletons in the working clustering");
            if let Some((target, avg)) = Self::best_cluster_for(graph, &working, oid, own) {
                if avg >= self.config.join_threshold {
                    working
                        .move_object(oid, target)
                        .expect("target cluster exists");
                }
            }
        }
        working
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_graph, graph_from_edges};
    use dc_types::{Operation, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn add(id: u64) -> Operation {
        Operation::Add {
            id: oid(id),
            record: RecordBuilder::new().number("id", id as f64).build(),
        }
    }

    #[test]
    fn new_objects_join_their_most_similar_cluster() {
        // Figure 1 scenario: r6 is similar to C2 (via r5), r7 to C1 (via r1).
        let graph = figure2_graph();
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(add(6));
        batch.push(add(7));
        let mut naive = Naive::default();
        let result = naive.recluster(&graph, &previous, &batch);
        result.check_invariants().unwrap();
        // r7 joins {r1, r2, r3} (avg sim 1.0/3 ≥ ... no! 0.33 < 0.5 threshold).
        // With the default threshold of 0.5, the averages (1.0/3 and 0.7/2)
        // are too low, so both stay singletons — the "no structural change"
        // weakness of Naive.
        assert_eq!(result.cluster_count(), 4);

        // With a permissive threshold they do join.
        let mut permissive = Naive::new(NaiveConfig {
            join_threshold: 0.3,
        });
        let result = permissive.recluster(&graph, &previous, &batch);
        assert_eq!(result.cluster_of(oid(7)), result.cluster_of(oid(1)));
        assert_eq!(result.cluster_of(oid(6)), result.cluster_of(oid(5)));
        assert_eq!(naive.name(), "naive");
    }

    #[test]
    fn naive_never_restructures_existing_clusters() {
        let graph = figure2_graph();
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(add(6));
        batch.push(add(7));
        let mut naive = Naive::new(NaiveConfig {
            join_threshold: 0.1,
        });
        let result = naive.recluster(&graph, &previous, &batch);
        // The old clusters C1 = {1,2,3} and C2 = {4,5} survive intact (only
        // grown): the paper's optimal answer would split C1, Naive cannot.
        let c1 = result.cluster_of(oid(1)).unwrap();
        assert_eq!(result.cluster_of(oid(2)), Some(c1));
        assert_eq!(result.cluster_of(oid(3)), Some(c1));
    }

    #[test]
    fn removals_are_processed() {
        // The graph reflects the post-batch state: object 3 is gone.
        let mut graph = graph_from_edges(5, &[(1, 2, 0.9), (4, 5, 0.8)]);
        graph.remove_object(oid(3));
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(Operation::Remove { id: oid(3) });
        let mut naive = Naive::default();
        let result = naive.recluster(&graph, &previous, &batch);
        assert!(!result.contains_object(oid(3)));
        assert_eq!(result.object_count(), 4);
    }

    #[test]
    fn dissimilar_new_objects_stay_singletons() {
        let graph = graph_from_edges(3, &[(1, 2, 0.9)]);
        let previous = dc_types::Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        let mut batch = OperationBatch::new();
        batch.push(add(3));
        let mut naive = Naive::default();
        let result = naive.recluster(&graph, &previous, &batch);
        assert!(result
            .cluster(result.cluster_of(oid(3)).unwrap())
            .unwrap()
            .is_singleton());
    }
}
