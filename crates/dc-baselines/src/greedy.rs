//! The Greedy incremental baseline (Gruenheid et al., VLDB 2014).
//!
//! Greedy is the paper's state-of-the-art comparison point: after each batch
//! of changes it restricts attention to the clusters *affected* by the
//! changes (the clusters containing touched objects plus every cluster
//! connected to them in the similarity graph) and then repeatedly applies
//! the best objective-improving operator among
//!
//! * **merge** of two affected clusters,
//! * **split** isolating the least cohesive member of an affected cluster,
//! * **move** of that member into a neighbouring affected cluster,
//!
//! until no operator improves the objective.  Because it evaluates every
//! candidate operator of every affected cluster in every iteration, its cost
//! grows quickly with the size of the affected neighbourhood — the latency
//! gap DynamicC exploits by consulting its learned model instead.

use crate::traits::{prepare_working_clustering, IncrementalClusterer};
use dc_objective::{improves, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId, OperationBatch};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration for [`Greedy`].
#[derive(Debug, Clone, Copy)]
pub struct GreedyConfig {
    /// Upper bound on greedy iterations per round (safety valve).
    pub max_iterations: usize,
    /// How many of a cluster's least cohesive members are considered as
    /// split / move candidates per iteration.
    pub candidates_per_cluster: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            max_iterations: 10_000,
            candidates_per_cluster: 1,
        }
    }
}

/// The Greedy incremental clusterer.
pub struct Greedy {
    objective: Arc<dyn ObjectiveFunction>,
    config: GreedyConfig,
}

#[derive(Debug)]
enum GreedyOp {
    Merge(ClusterId, ClusterId),
    Isolate(ClusterId, ObjectId),
    Move(ObjectId, ClusterId),
}

impl Greedy {
    /// Create a Greedy baseline for the given objective.
    pub fn new(objective: Arc<dyn ObjectiveFunction>, config: GreedyConfig) -> Self {
        Greedy { objective, config }
    }

    /// Convenience constructor with the default configuration.
    pub fn with_objective(objective: Arc<dyn ObjectiveFunction>) -> Self {
        Self::new(objective, GreedyConfig::default())
    }

    /// The clusters affected by this round: clusters of touched objects plus
    /// every cluster sharing a stored edge with one of them.
    fn affected_clusters(
        agg: &ClusterAggregates,
        clustering: &Clustering,
        touched: &[ObjectId],
    ) -> BTreeSet<ClusterId> {
        let mut affected = BTreeSet::new();
        for &o in touched {
            if let Some(cid) = clustering.cluster_of(o) {
                affected.insert(cid);
            }
        }
        let seeds: Vec<ClusterId> = affected.iter().copied().collect();
        for cid in seeds {
            for n in agg.neighbour_clusters(cid) {
                affected.insert(n);
            }
        }
        affected
    }

    fn best_operation(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        agg: &ClusterAggregates,
        affected: &BTreeSet<ClusterId>,
    ) -> Option<(GreedyOp, f64)> {
        let mut best: Option<(GreedyOp, f64)> = None;
        let consider = |op: GreedyOp, delta: f64, best: &mut Option<(GreedyOp, f64)>| {
            if best.as_ref().is_none_or(|(_, d)| delta < *d) {
                *best = Some((op, delta));
            }
        };

        for &cid in affected {
            if !clustering.contains_cluster(cid) {
                continue;
            }
            // Merges with neighbouring affected clusters.
            for other in agg.neighbour_clusters(cid) {
                if other <= cid || !affected.contains(&other) {
                    continue;
                }
                let delta = self
                    .objective
                    .merge_delta_with(agg, graph, clustering, cid, other);
                consider(GreedyOp::Merge(cid, other), delta, &mut best);
            }
            // Splits and moves of the least cohesive members.
            if clustering.cluster_size(cid) >= 2 {
                for (oid, _) in ClusterAggregates::members_by_split_weight(graph, clustering, cid)
                    .into_iter()
                    .take(self.config.candidates_per_cluster)
                {
                    let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
                    let delta = self
                        .objective
                        .split_delta_with(agg, graph, clustering, cid, &part);
                    consider(GreedyOp::Isolate(cid, oid), delta, &mut best);

                    // Move to the most attractive affected neighbour cluster.
                    let mut attraction: std::collections::BTreeMap<ClusterId, f64> =
                        std::collections::BTreeMap::new();
                    for (n, sim) in graph.neighbors(oid) {
                        if let Some(t) = clustering.cluster_of(n) {
                            if t != cid && affected.contains(&t) {
                                *attraction.entry(t).or_insert(0.0) += sim;
                            }
                        }
                    }
                    if let Some((target, _)) = attraction
                        .into_iter()
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    {
                        let delta = self
                            .objective
                            .move_delta_with(agg, graph, clustering, oid, target);
                        consider(GreedyOp::Move(oid, target), delta, &mut best);
                    }
                }
            }
        }
        best
    }
}

impl IncrementalClusterer for Greedy {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn recluster(
        &mut self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
    ) -> Clustering {
        let (mut working, isolated) = prepare_working_clustering(graph, previous, batch);
        let mut touched: Vec<ObjectId> = isolated;
        // A removal affects the survivors of the cluster it left: mark them
        // as touched so their cluster (and its neighbourhood) is revisited.
        for id in batch.removed_ids() {
            if let Some(cid) = previous.cluster_of(id) {
                if let Some(cluster) = previous.cluster(cid) {
                    touched.extend(
                        cluster
                            .iter()
                            .filter(|&m| m != id && working.contains_object(m)),
                    );
                }
            }
        }

        // One full aggregate build per round; every applied operation below
        // is folded back in incrementally.
        let mut agg = ClusterAggregates::new(graph, &working);
        let mut affected = Self::affected_clusters(&agg, &working, &touched);
        for _ in 0..self.config.max_iterations {
            match self.best_operation(graph, &working, &agg, &affected) {
                Some((op, delta)) if improves(delta) => match op {
                    GreedyOp::Merge(a, b) => {
                        let merged = working.merge(a, b).expect("affected clusters exist");
                        agg.apply_merge(a, b, merged);
                        affected.remove(&a);
                        affected.remove(&b);
                        affected.insert(merged);
                    }
                    GreedyOp::Isolate(cid, oid) => {
                        let part: BTreeSet<ObjectId> = [oid].into_iter().collect();
                        let (p, r) = working.split(cid, &part).expect("valid split");
                        agg.apply_split(graph, &working, cid, p, r);
                        affected.remove(&cid);
                        affected.insert(p);
                        affected.insert(r);
                    }
                    GreedyOp::Move(oid, target) => {
                        let source = working.cluster_of(oid).expect("object clustered");
                        working.move_object(oid, target).expect("target exists");
                        agg.apply_move(graph, &working, oid, source, target);
                        if !working.contains_cluster(source) {
                            affected.remove(&source);
                        }
                    }
                },
                _ => break,
            }
        }
        working
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_objective::{CorrelationObjective, DbIndexObjective};
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_graph, graph_from_edges};
    use dc_types::{Operation, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn add(id: u64) -> Operation {
        Operation::Add {
            id: oid(id),
            record: RecordBuilder::new().number("id", id as f64).build(),
        }
    }

    fn greedy_correlation() -> Greedy {
        Greedy::with_objective(Arc::new(CorrelationObjective))
    }

    #[test]
    fn strongly_attached_new_objects_are_merged_into_their_entities() {
        // Figure 1's topology enriched so that the new objects are strongly
        // attached to whole clusters (r7 to all of C1, r6 to all of C2);
        // greedy must then merge them in and improve the objective.
        let graph = graph_from_edges(
            7,
            &[
                (1, 2, 0.9),
                (1, 3, 0.9),
                (2, 3, 0.9),
                (4, 5, 0.8),
                (6, 4, 0.8),
                (6, 5, 0.8),
                (7, 1, 1.0),
                (7, 2, 0.9),
                (7, 3, 0.9),
            ],
        );
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(add(6));
        batch.push(add(7));
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &batch);
        result.check_invariants().unwrap();
        let obj = CorrelationObjective;
        let (baseline, _) = prepare_working_clustering(&graph, &previous, &batch);
        assert!(obj.evaluate(&graph, &result) < obj.evaluate(&graph, &baseline));
        assert_eq!(result.cluster_of(oid(7)), result.cluster_of(oid(1)));
        assert_eq!(result.cluster_of(oid(6)), result.cluster_of(oid(4)));
        assert_eq!(greedy.name(), "greedy");
    }

    #[test]
    fn figure1_example_converges_to_the_objective_optimum() {
        // Under the paper's Eq. 1 weights, the optimal reaction to r6 and r7
        // arriving is to keep them as singletons (every merge worsens the
        // disagreement cost); greedy must not degrade the clustering.
        let graph = figure2_graph();
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(add(6));
        batch.push(add(7));
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &batch);
        result.check_invariants().unwrap();
        let obj = CorrelationObjective;
        let (baseline, _) = prepare_working_clustering(&graph, &previous, &batch);
        assert!(obj.evaluate(&graph, &result) <= obj.evaluate(&graph, &baseline) + 1e-9);
    }

    #[test]
    fn no_improving_operation_remains_among_affected_clusters() {
        let graph = figure2_graph();
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(add(6));
        batch.push(add(7));
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &batch);
        let affected: BTreeSet<ClusterId> = result.cluster_ids().into_iter().collect();
        let agg = ClusterAggregates::new(&graph, &result);
        if let Some((_, delta)) = greedy.best_operation(&graph, &result, &agg, &affected) {
            assert!(!improves(delta));
        }
    }

    #[test]
    fn greedy_with_db_index_resolves_new_duplicates() {
        // Existing resolved entity {1,2}; new objects 3 (duplicate of entity
        // A) and 4,5 (a new entity) arrive.
        let graph = graph_from_edges(5, &[(1, 2, 0.95), (1, 3, 0.9), (2, 3, 0.9), (4, 5, 0.85)]);
        let previous = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        let mut batch = OperationBatch::new();
        batch.push(add(3));
        batch.push(add(4));
        batch.push(add(5));
        let mut greedy = Greedy::with_objective(Arc::new(DbIndexObjective));
        let result = greedy.recluster(&graph, &previous, &batch);
        assert_eq!(result.cluster_of(oid(3)), result.cluster_of(oid(1)));
        assert_eq!(result.cluster_of(oid(4)), result.cluster_of(oid(5)));
        assert_ne!(result.cluster_of(oid(4)), result.cluster_of(oid(1)));
    }

    #[test]
    fn unaffected_clusters_are_left_untouched() {
        // Two far-apart resolved entities; only one neighbourhood changes.
        let graph = graph_from_edges(6, &[(1, 2, 0.9), (3, 4, 0.9), (5, 1, 0.8), (5, 2, 0.85)]);
        let previous =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let far_cluster = previous.cluster_of(oid(3)).unwrap();
        let mut batch = OperationBatch::new();
        batch.push(add(5));
        batch.push(add(6)); // isolated noise object
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &batch);
        // The {3,4} cluster is untouched (same id survives, same members).
        assert!(result.contains_cluster(far_cluster));
        assert_eq!(result.cluster_size(far_cluster), 2);
        // The new object 5 joined {1,2}.
        assert_eq!(result.cluster_of(oid(5)), result.cluster_of(oid(1)));
        // Object 6 has no edges and stays a singleton.
        assert!(result
            .cluster(result.cluster_of(oid(6)).unwrap())
            .unwrap()
            .is_singleton());
    }

    #[test]
    fn removal_that_breaks_a_bridge_lets_greedy_split() {
        // {1,2,3} held together only by 2; removing 2 should let the split
        // operators separate 1 and 3 because their residual similarity is
        // negligible.  The graph reflects the post-batch state (2 removed).
        let mut graph = graph_from_edges(3, &[(1, 3, 0.05)]);
        graph.remove_object(oid(2));
        let previous = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let mut batch = OperationBatch::new();
        batch.push(Operation::Remove { id: oid(2) });
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &batch);
        assert_ne!(result.cluster_of(oid(1)), result.cluster_of(oid(3)));
    }

    #[test]
    fn empty_batch_is_a_no_op_up_to_alignment() {
        let graph = figure2_graph();
        let previous = figure1_old_clustering();
        let mut greedy = greedy_correlation();
        let result = greedy.recluster(&graph, &previous, &OperationBatch::new());
        // Objects 6 and 7 exist in the graph but not in the previous
        // clustering; they are aligned in as affected singletons and may then
        // be merged — but the pre-existing clusters must stay.
        assert_eq!(result.cluster_of(oid(2)), result.cluster_of(oid(3)));
        assert_eq!(result.cluster_of(oid(4)), result.cluster_of(oid(5)));
    }
}
