//! The [`IncrementalClusterer`] trait shared by Naive, Greedy, and DynamicC.

use dc_similarity::SimilarityGraph;
use dc_types::{Clustering, ObjectId, Operation, OperationBatch};

/// An incremental (dynamic) clustering method.
///
/// The caller owns the similarity graph and applies each snapshot's
/// operations to it *before* invoking [`IncrementalClusterer::recluster`];
/// the method then transforms the previous clustering into a clustering of
/// the post-batch object set.
pub trait IncrementalClusterer: Send + Sync {
    /// Human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Produce the new clustering for the current graph contents.
    ///
    /// * `graph` — similarity graph *after* applying `batch`;
    /// * `previous` — the clustering from the previous round (over the
    ///   pre-batch object set);
    /// * `batch` — the operations applied in this round.
    fn recluster(
        &mut self,
        graph: &SimilarityGraph,
        previous: &Clustering,
        batch: &OperationBatch,
    ) -> Clustering;
}

/// The shared "initial processing" step (§6.1): starting from the previous
/// clustering, remove deleted objects, pull updated objects out of their old
/// clusters, and give every added or updated object a fresh singleton
/// cluster.  Returns the working clustering together with the ids that were
/// newly isolated (added + updated objects still present in the graph).
pub fn prepare_working_clustering(
    graph: &SimilarityGraph,
    previous: &Clustering,
    batch: &OperationBatch,
) -> (Clustering, Vec<ObjectId>) {
    let mut working = previous.clone();
    let mut isolated = Vec::new();

    for op in batch.iter() {
        match op {
            Operation::Add { id, .. } => {
                // May already be present if the same id was added and removed
                // within one batch; ignore duplicates defensively.
                if !working.contains_object(*id) && graph.contains(*id) {
                    working.create_cluster([*id]).expect("fresh object");
                    isolated.push(*id);
                }
            }
            Operation::Remove { id } => {
                if working.contains_object(*id) {
                    working.remove_object(*id).expect("object present");
                }
            }
            Operation::Update { id, .. } => {
                // Updating = remove from its cluster + re-add as a singleton.
                if working.contains_object(*id) {
                    working.remove_object(*id).expect("object present");
                }
                if graph.contains(*id) {
                    working.create_cluster([*id]).expect("object just removed");
                    isolated.push(*id);
                }
            }
        }
    }

    // Defensive alignment: any graph object the previous clustering never
    // knew about becomes a singleton too.
    for o in graph.object_ids() {
        if !working.contains_object(o) {
            working.create_cluster([o]).expect("object not clustered");
            isolated.push(o);
        }
    }
    // And clustering entries for objects the graph no longer has are dropped.
    for o in working.object_ids() {
        if !graph.contains(o) {
            working.remove_object(o).expect("object present");
        }
    }

    (working, isolated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::{figure1_old_clustering, figure2_graph};
    use dc_types::{Record, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn rec() -> Record {
        RecordBuilder::new().number("id", 0.0).build()
    }

    #[test]
    fn initial_processing_handles_all_three_operations() {
        let graph = figure2_graph(); // objects 1..=7
        let previous = figure1_old_clustering(); // clusters over 1..=5
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: oid(6),
            record: rec(),
        });
        batch.push(Operation::Add {
            id: oid(7),
            record: rec(),
        });
        batch.push(Operation::Update {
            id: oid(2),
            record: rec(),
        });

        let (working, isolated) = prepare_working_clustering(&graph, &previous, &batch);
        working.check_invariants().unwrap();
        assert_eq!(working.object_count(), 7);
        // 6 and 7 are new singletons, 2 was pulled out of C1.
        assert!(working
            .cluster(working.cluster_of(oid(6)).unwrap())
            .unwrap()
            .is_singleton());
        assert!(working
            .cluster(working.cluster_of(oid(2)).unwrap())
            .unwrap()
            .is_singleton());
        assert_eq!(working.cluster_size(working.cluster_of(oid(1)).unwrap()), 2);
        assert_eq!(isolated.len(), 3);
    }

    #[test]
    fn removals_drop_objects_and_possibly_clusters() {
        // The graph reflects the post-batch state (objects 4 and 5 removed).
        let mut graph = dc_similarity::fixtures::graph_from_edges(5, &[(1, 2, 0.9)]);
        graph.remove_object(oid(4));
        graph.remove_object(oid(5));
        let previous = figure1_old_clustering();
        let mut batch = OperationBatch::new();
        batch.push(Operation::Remove { id: oid(4) });
        batch.push(Operation::Remove { id: oid(5) });
        let (working, isolated) = prepare_working_clustering(&graph, &previous, &batch);
        assert_eq!(working.object_count(), 3);
        assert!(isolated.is_empty());
        assert!(!working.contains_object(oid(4)));
        working.check_invariants().unwrap();
    }

    #[test]
    fn graph_clustering_mismatches_are_reconciled() {
        // The previous clustering knows object 9 which the graph lost, and
        // the graph has object 7 the clustering never saw; an empty batch
        // must still reconcile both.
        let graph = figure2_graph();
        let mut previous = figure1_old_clustering();
        previous.create_cluster([oid(9)]).unwrap();
        let (working, isolated) =
            prepare_working_clustering(&graph, &previous, &OperationBatch::new());
        assert!(!working.contains_object(oid(9)));
        assert!(working.contains_object(oid(6)));
        assert!(working.contains_object(oid(7)));
        assert_eq!(isolated.len(), 2);
        working.check_invariants().unwrap();
    }
}
