//! Snapshots of the dynamic process.
//!
//! The paper evaluates each dataset as a sequence of *snapshots* (rounds):
//! starting from an initial subset of the data, each snapshot applies a batch
//! of add / remove / update operations and then triggers re-clustering
//! (Figure 5(a) lists the per-snapshot operation mix for each dataset).  A
//! [`Snapshot`] couples one such operation batch with bookkeeping metadata so
//! that the benchmark harness, the baselines, and DynamicC all replay exactly
//! the same workload.

use crate::{OperationBatch, OperationKind};
use serde::{Deserialize, Serialize};

/// One round of the dynamic workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// 1-based index of the snapshot in its workload.
    pub index: usize,
    /// Operations applied in this round, in order.
    pub batch: OperationBatch,
}

impl Snapshot {
    /// Create a snapshot.
    pub fn new(index: usize, batch: OperationBatch) -> Self {
        Snapshot { index, batch }
    }

    /// Operation statistics for this snapshot.
    pub fn stats(&self) -> SnapshotStats {
        let (adds, removes, updates) = self.batch.counts();
        SnapshotStats {
            index: self.index,
            adds,
            removes,
            updates,
        }
    }
}

/// Per-snapshot operation counts, used to report the Figure 5(a)-style
/// workload composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// 1-based snapshot index.
    pub index: usize,
    /// Number of Add operations.
    pub adds: usize,
    /// Number of Remove operations.
    pub removes: usize,
    /// Number of Update operations.
    pub updates: usize,
}

impl SnapshotStats {
    /// Total number of operations.
    pub fn total(&self) -> usize {
        self.adds + self.removes + self.updates
    }

    /// Percentage of operations of the given kind (0 when the snapshot is
    /// empty), matching the y-axis of Figure 5(a).
    pub fn percentage(&self, kind: OperationKind, base: usize) -> f64 {
        if base == 0 {
            return 0.0;
        }
        let count = match kind {
            OperationKind::Add => self.adds,
            OperationKind::Remove => self.removes,
            OperationKind::Update => self.updates,
        };
        100.0 * count as f64 / base as f64
    }
}

impl crate::codec::BinCodec for Snapshot {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_usize(self.index);
        self.batch.encode(w);
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let index = r.get_usize()?;
        let batch = OperationBatch::decode(r)?;
        Ok(Snapshot::new(index, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, Operation, RecordBuilder};

    fn add(raw: u64) -> Operation {
        Operation::Add {
            id: ObjectId::new(raw),
            record: RecordBuilder::new().text("t", "x").build(),
        }
    }

    #[test]
    fn stats_count_each_kind() {
        let mut b = OperationBatch::new();
        b.push(add(1));
        b.push(add(2));
        b.push(Operation::Remove {
            id: ObjectId::new(1),
        });
        let snap = Snapshot::new(3, b);
        let s = snap.stats();
        assert_eq!(s.index, 3);
        assert_eq!(s.adds, 2);
        assert_eq!(s.removes, 1);
        assert_eq!(s.updates, 0);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn percentage_is_relative_to_base() {
        let mut b = OperationBatch::new();
        b.push(add(1));
        b.push(add(2));
        let s = Snapshot::new(1, b).stats();
        assert!((s.percentage(OperationKind::Add, 10) - 20.0).abs() < 1e-12);
        assert_eq!(s.percentage(OperationKind::Remove, 10), 0.0);
        assert_eq!(s.percentage(OperationKind::Add, 0), 0.0);
    }

    #[test]
    fn empty_snapshot_stats() {
        let s = Snapshot::default().stats();
        assert_eq!(s.total(), 0);
    }
}
