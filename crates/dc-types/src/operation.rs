//! Dynamic-workload operations (§3.1 of the paper).
//!
//! The paper defines three operations on the database, each of which may
//! trigger re-clustering:
//!
//! * **Adding** a new object — it may join an existing cluster, sit in a
//!   singleton cluster, or cause an existing cluster to split.
//! * **Removing** an object — may cause its cluster to split or merge with a
//!   neighbour.
//! * **Updating** an object — changes its similarity relations; equivalent to
//!   a remove followed by an add (and that is exactly how DynamicC's initial
//!   processing treats it, §6.1).

use crate::{ObjectId, Record};
use serde::{Deserialize, Serialize};

/// A single change to the database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operation {
    /// Add a new object under a chosen id.
    Add {
        /// Identifier of the new object.
        id: ObjectId,
        /// Its payload.
        record: Record,
    },
    /// Remove a live object.
    Remove {
        /// Identifier of the object to remove.
        id: ObjectId,
    },
    /// Replace the record of a live object.
    Update {
        /// Identifier of the object to update.
        id: ObjectId,
        /// Its new payload.
        record: Record,
    },
}

impl Operation {
    /// The id of the object touched by this operation.
    pub fn object_id(&self) -> ObjectId {
        match self {
            Operation::Add { id, .. } | Operation::Remove { id } | Operation::Update { id, .. } => {
                *id
            }
        }
    }

    /// The kind of this operation (without its payload).
    pub fn kind(&self) -> OperationKind {
        match self {
            Operation::Add { .. } => OperationKind::Add,
            Operation::Remove { .. } => OperationKind::Remove,
            Operation::Update { .. } => OperationKind::Update,
        }
    }
}

/// The three operation kinds of §3.1, payload-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperationKind {
    /// A new object is added.
    Add,
    /// An existing object is removed.
    Remove,
    /// An existing object's record changes.
    Update,
}

impl std::fmt::Display for OperationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OperationKind::Add => write!(f, "Add"),
            OperationKind::Remove => write!(f, "Remove"),
            OperationKind::Update => write!(f, "Update"),
        }
    }
}

/// An ordered batch of operations applied between two re-clusterings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OperationBatch {
    ops: Vec<Operation>,
}

impl OperationBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a batch from a vector of operations.
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        OperationBatch { ops }
    }

    /// Append an operation.
    pub fn push(&mut self, op: Operation) {
        self.ops.push(op);
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over the operations in order.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.ops.iter()
    }

    /// Ids of objects that were added by this batch.
    pub fn added_ids(&self) -> Vec<ObjectId> {
        self.ids_of_kind(OperationKind::Add)
    }

    /// Ids of objects that were removed by this batch.
    pub fn removed_ids(&self) -> Vec<ObjectId> {
        self.ids_of_kind(OperationKind::Remove)
    }

    /// Ids of objects that were updated by this batch.
    pub fn updated_ids(&self) -> Vec<ObjectId> {
        self.ids_of_kind(OperationKind::Update)
    }

    /// Ids of all objects touched by this batch (added, removed or updated),
    /// deduplicated, keeping only the *latest* change per object as required
    /// by Phase 1 of the cross-round evolution derivation (§4.3).
    pub fn touched_ids(&self) -> Vec<ObjectId> {
        let mut seen = std::collections::BTreeSet::new();
        // Iterate in reverse so the latest operation wins, then restore order.
        let mut out: Vec<ObjectId> = Vec::new();
        for op in self.ops.iter().rev() {
            if seen.insert(op.object_id()) {
                out.push(op.object_id());
            }
        }
        out.reverse();
        out
    }

    /// Per-kind counts `(adds, removes, updates)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut a = 0;
        let mut r = 0;
        let mut u = 0;
        for op in &self.ops {
            match op.kind() {
                OperationKind::Add => a += 1,
                OperationKind::Remove => r += 1,
                OperationKind::Update => u += 1,
            }
        }
        (a, r, u)
    }

    fn ids_of_kind(&self, kind: OperationKind) -> Vec<ObjectId> {
        self.ops
            .iter()
            .filter(|op| op.kind() == kind)
            .map(|op| op.object_id())
            .collect()
    }
}

impl IntoIterator for OperationBatch {
    type Item = Operation;
    type IntoIter = std::vec::IntoIter<Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a OperationBatch {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

const OP_TAG_ADD: u8 = 0;
const OP_TAG_REMOVE: u8 = 1;
const OP_TAG_UPDATE: u8 = 2;

impl crate::codec::BinCodec for Operation {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        match self {
            Operation::Add { id, record } => {
                w.put_u8(OP_TAG_ADD);
                id.encode(w);
                record.encode(w);
            }
            Operation::Remove { id } => {
                w.put_u8(OP_TAG_REMOVE);
                id.encode(w);
            }
            Operation::Update { id, record } => {
                w.put_u8(OP_TAG_UPDATE);
                id.encode(w);
                record.encode(w);
            }
        }
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        match r.get_u8()? {
            OP_TAG_ADD => Ok(Operation::Add {
                id: ObjectId::decode(r)?,
                record: Record::decode(r)?,
            }),
            OP_TAG_REMOVE => Ok(Operation::Remove {
                id: ObjectId::decode(r)?,
            }),
            OP_TAG_UPDATE => Ok(Operation::Update {
                id: ObjectId::decode(r)?,
                record: Record::decode(r)?,
            }),
            tag => Err(crate::codec::CodecError::BadTag {
                what: "Operation",
                tag,
            }),
        }
    }
}

impl crate::codec::BinCodec for OperationBatch {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_usize(self.ops.len());
        for op in &self.ops {
            op.encode(w);
        }
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        // The smallest operation is a Remove: 1 tag byte + 8 id bytes.
        let len = r.get_length_prefix(9)?;
        let mut ops = Vec::with_capacity(len);
        for _ in 0..len {
            ops.push(Operation::decode(r)?);
        }
        Ok(OperationBatch { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordBuilder;

    fn rec(name: &str) -> Record {
        RecordBuilder::new().text("name", name).build()
    }

    fn id(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn operation_accessors() {
        let add = Operation::Add {
            id: id(1),
            record: rec("a"),
        };
        let rem = Operation::Remove { id: id(2) };
        let upd = Operation::Update {
            id: id(3),
            record: rec("c"),
        };
        assert_eq!(add.object_id(), id(1));
        assert_eq!(rem.object_id(), id(2));
        assert_eq!(upd.object_id(), id(3));
        assert_eq!(add.kind(), OperationKind::Add);
        assert_eq!(rem.kind(), OperationKind::Remove);
        assert_eq!(upd.kind(), OperationKind::Update);
    }

    #[test]
    fn batch_counts_and_kind_filters() {
        let mut b = OperationBatch::new();
        b.push(Operation::Add {
            id: id(1),
            record: rec("a"),
        });
        b.push(Operation::Add {
            id: id(2),
            record: rec("b"),
        });
        b.push(Operation::Remove { id: id(3) });
        b.push(Operation::Update {
            id: id(4),
            record: rec("d"),
        });
        assert_eq!(b.counts(), (2, 1, 1));
        assert_eq!(b.added_ids(), vec![id(1), id(2)]);
        assert_eq!(b.removed_ids(), vec![id(3)]);
        assert_eq!(b.updated_ids(), vec![id(4)]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn touched_ids_keeps_latest_change_per_object() {
        // Object 1 is added then updated twice; it should appear once.
        let mut b = OperationBatch::new();
        b.push(Operation::Add {
            id: id(1),
            record: rec("v1"),
        });
        b.push(Operation::Update {
            id: id(1),
            record: rec("v2"),
        });
        b.push(Operation::Add {
            id: id(2),
            record: rec("x"),
        });
        b.push(Operation::Update {
            id: id(1),
            record: rec("v3"),
        });
        let touched = b.touched_ids();
        assert_eq!(touched.len(), 2);
        assert!(touched.contains(&id(1)));
        assert!(touched.contains(&id(2)));
    }

    #[test]
    fn empty_batch_behaviour() {
        let b = OperationBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.counts(), (0, 0, 0));
        assert!(b.touched_ids().is_empty());
    }

    #[test]
    fn operation_kind_display() {
        assert_eq!(OperationKind::Add.to_string(), "Add");
        assert_eq!(OperationKind::Remove.to_string(), "Remove");
        assert_eq!(OperationKind::Update.to_string(), "Update");
    }
}
