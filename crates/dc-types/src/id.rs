//! Identifier newtypes for objects and clusters.
//!
//! Both identifiers are thin wrappers around `u64` so that they are `Copy`,
//! hash quickly, and can be used as dense indices where convenient.  Using
//! distinct newtypes (rather than bare integers) prevents the classic bug of
//! passing a cluster id where an object id is expected — a mistake that is
//! easy to make in clustering code where both are ubiquitous.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a single database object (a record / data point).
///
/// Object ids are assigned by the data source (generator or loader) and are
/// stable for the lifetime of the object: updates keep the id, removals
/// retire it, re-additions of "the same" logical entity get a fresh id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Create an object id from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(raw: u64) -> Self {
        ObjectId(raw)
    }
}

/// Identifier of a cluster within a [`Clustering`](crate::Clustering).
///
/// Cluster ids are only meaningful inside the clustering that produced them;
/// merging or splitting allocates fresh ids so that evolution steps can refer
/// unambiguously to "the cluster before" and "the cluster after" a change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterId(pub u64);

impl ClusterId {
    /// Create a cluster id from a raw integer.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        ClusterId(raw)
    }

    /// The raw integer value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<u64> for ClusterId {
    fn from(raw: u64) -> Self {
        ClusterId(raw)
    }
}

/// Number of high bits of a cluster id reserved for the allocating shard's
/// index when a clustering is served by a sharded engine.
///
/// Sharded serving runs one independent engine per shard and merges the
/// per-shard clusterings into one global view, so cluster ids allocated by
/// different shards must never collide.  The scheme mirrors the watermark
/// the [`Clustering`](crate::Clustering) codec already persists: shard `i`
/// allocates from `(i << SHARD_ID_SHIFT) + watermark` upward, so every id it
/// creates carries `i` in its high byte while ids inherited from the
/// pre-shard clustering (all below the watermark, which must fit the shard-0
/// namespace) stay untouched.
pub const SHARD_ID_BITS: u32 = 8;

/// Bit position of the shard tag within a cluster id (`64 - SHARD_ID_BITS`).
pub const SHARD_ID_SHIFT: u32 = 64 - SHARD_ID_BITS;

/// Maximum number of shards representable by the shard-tagged id scheme.
pub const MAX_SHARDS: usize = 1 << SHARD_ID_BITS;

/// The first raw id of shard `shard`'s allocation namespace.
pub fn shard_id_base(shard: usize) -> u64 {
    assert!(shard < MAX_SHARDS, "shard {shard} exceeds MAX_SHARDS");
    (shard as u64) << SHARD_ID_SHIFT
}

impl ClusterId {
    /// The shard tag carried in the id's high bits (0 for ids allocated
    /// outside any sharded engine).
    pub fn shard_tag(self) -> usize {
        (self.0 >> SHARD_ID_SHIFT) as usize
    }
}

/// A monotonically increasing generator of fresh identifiers.
///
/// Both [`Dataset`](crate::Dataset) and [`Clustering`](crate::Clustering) own
/// one of these so that ids never collide within one container.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdGenerator {
    next: u64,
}

impl IdGenerator {
    /// Create a generator starting at zero.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Create a generator that will hand out ids starting at `start`.
    pub fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Next object id.
    pub fn next_object(&mut self) -> ObjectId {
        ObjectId(self.next_raw())
    }

    /// Next cluster id.
    pub fn next_cluster(&mut self) -> ClusterId {
        ClusterId(self.next_raw())
    }

    /// Make sure future ids are strictly greater than `raw`.
    pub fn bump_past(&mut self, raw: u64) {
        if raw >= self.next {
            self.next = raw + 1;
        }
    }

    /// Raise the generator so the next id is at least `raw` (no-op when the
    /// generator is already past it).  Unlike [`IdGenerator::bump_past`],
    /// `raw` itself remains available — this installs an exact watermark,
    /// which is what sharded id partitioning needs.
    pub fn raise_to(&mut self, raw: u64) {
        if raw > self.next {
            self.next = raw;
        }
    }

    /// The next id that would be handed out (without consuming it).
    pub fn peek(&self) -> u64 {
        self.next
    }
}

impl crate::codec::BinCodec for ObjectId {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(ObjectId::new(r.get_u64()?))
    }
}

impl crate::codec::BinCodec for ClusterId {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.raw());
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(ClusterId::new(r.get_u64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn object_id_roundtrip() {
        let id = ObjectId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(ObjectId::from(42u64), id);
        assert_eq!(id.to_string(), "r42");
    }

    #[test]
    fn cluster_id_roundtrip() {
        let id = ClusterId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(ClusterId::from(7u64), id);
        assert_eq!(id.to_string(), "C7");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
        assert!(ClusterId::new(10) > ClusterId::new(9));
    }

    #[test]
    fn generator_yields_unique_ids() {
        let mut g = IdGenerator::new();
        let ids: BTreeSet<u64> = (0..1000).map(|_| g.next_raw()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn generator_bump_past_skips_used_range() {
        let mut g = IdGenerator::starting_at(5);
        assert_eq!(g.next_raw(), 5);
        g.bump_past(100);
        assert_eq!(g.next_raw(), 101);
        // Bumping below the current watermark is a no-op.
        g.bump_past(3);
        assert_eq!(g.next_raw(), 102);
    }

    #[test]
    fn shard_tagged_namespaces_are_disjoint() {
        assert_eq!(shard_id_base(0), 0);
        assert_eq!(shard_id_base(1), 1 << SHARD_ID_SHIFT);
        assert_eq!(ClusterId::new(5).shard_tag(), 0);
        assert_eq!(ClusterId::new(shard_id_base(3) + 42).shard_tag(), 3);
        // A generator seeded at a shard base stays inside that namespace for
        // any realistic number of allocations.
        let mut g = IdGenerator::starting_at(shard_id_base(2));
        let id = g.next_cluster();
        assert_eq!(id.shard_tag(), 2);
    }

    #[test]
    #[should_panic]
    fn shard_id_base_rejects_out_of_range_shards() {
        shard_id_base(MAX_SHARDS);
    }

    #[test]
    fn raise_to_installs_an_exact_watermark() {
        let mut g = IdGenerator::new();
        g.raise_to(10);
        assert_eq!(g.peek(), 10);
        assert_eq!(g.next_raw(), 10);
        // Raising below the current position is a no-op.
        g.raise_to(3);
        assert_eq!(g.next_raw(), 11);
    }

    #[test]
    fn generator_peek_does_not_consume() {
        let mut g = IdGenerator::new();
        assert_eq!(g.peek(), 0);
        assert_eq!(g.peek(), 0);
        assert_eq!(g.next_object(), ObjectId::new(0));
        assert_eq!(g.peek(), 1);
    }
}
