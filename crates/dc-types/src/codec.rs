//! Hand-rolled binary codec for the durable-serving subsystem.
//!
//! The repository vendors only an API-subset `serde` shim (no `serde_json`,
//! no `bincode`), so the persistence layer (`dc-storage`) defines its own
//! wire format here, next to the types it serializes.  Design goals, in
//! order:
//!
//! 1. **Bit-exactness** — floating-point values round-trip through
//!    [`f64::to_bits`], so a decoded [`Clustering`] / graph state is
//!    *bit-identical* to the encoded one.  This is what lets a recovered
//!    engine reproduce the exact decisions of a never-restarted one.
//! 2. **Corruption detection** — every durable artifact frames the encoded
//!    bytes with a [`crc32`] checksum (the framing itself lives in
//!    `dc-storage`; the polynomial and reference implementation live here so
//!    both the WAL and the snapshot file share one definition).
//! 3. **Versioning** — enums are tag-prefixed and containers are
//!    length-prefixed, and the outer file formats carry explicit version
//!    numbers, so the format can evolve without silently misreading old
//!    files.
//!
//! The encoding is deliberately simple: little-endian fixed-width integers,
//! `u64` length prefixes for containers and strings, one tag byte per enum
//! variant.  No varints, no back-references — the artifacts are small
//! (operation batches and engine snapshots) and decode speed matters more
//! than the last byte of density.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors raised while decoding a binary artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// Bytes that were needed to continue decoding.
        needed: usize,
        /// Bytes that remained in the input.
        remaining: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix was implausibly large for the remaining input
    /// (protects against allocating gigabytes on a corrupt length).
    BadLength {
        /// The declared element count.
        declared: u64,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// The decoded value violates a structural invariant of its type
    /// (e.g. a clustering whose clusters are not disjoint).
    Invalid(String),
    /// Trailing bytes were left after the value was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::BadTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadLength {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} is implausible with {remaining} bytes remaining"
            ),
            CodecError::Invalid(msg) => write!(f, "decoded value is invalid: {msg}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decoded value"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, `0xEDB88320`) over `bytes` — the checksum
/// guarding every WAL record and snapshot payload.  Table-free bitwise
/// implementation: the inputs are small and the definition stays auditable.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

/// Append-only byte sink used by [`BinCodec::encode`].
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `usize` as a `u64` (the wire format is 64-bit everywhere).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an `f64` by its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Write raw bytes with no length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Cursor over encoded bytes used by [`BinCodec::decode`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u64` and convert it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength {
            declared: v,
            remaining: self.remaining(),
        })
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool; any byte other than 0 or 1 is rejected.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let len = self.get_length_prefix(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// Read a `u64` element count and sanity-check it against the remaining
    /// input, assuming each element occupies at least `min_element_bytes`.
    /// Rejecting implausible counts up front keeps a corrupt length prefix
    /// from turning into a multi-gigabyte allocation.
    pub fn get_length_prefix(&mut self, min_element_bytes: usize) -> Result<usize, CodecError> {
        let declared = self.get_u64()?;
        let remaining = self.remaining();
        let plausible = declared
            .checked_mul(min_element_bytes.max(1) as u64)
            .is_some_and(|total| total <= remaining as u64);
        if !plausible {
            return Err(CodecError::BadLength {
                declared,
                remaining,
            });
        }
        Ok(declared as usize)
    }
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// A type with a stable binary wire representation.
///
/// Implementations must round-trip exactly: `decode(encode(x)) == x`
/// bit-for-bit, including `f64` payloads.  Decoding validates structural
/// invariants and never panics on corrupt input — every failure mode is a
/// [`CodecError`].
pub trait BinCodec: Sized {
    /// Append this value's encoding to the writer.
    fn encode(&self, w: &mut ByteWriter);

    /// Decode one value from the reader, advancing it past the value.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;

    /// Encode into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a slice, requiring that every byte is consumed.
    fn decode_exact(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(CodecError::TrailingBytes(r.remaining()));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Primitive / container impls
// ---------------------------------------------------------------------------

impl BinCodec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl BinCodec for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_f64()
    }
}

impl BinCodec for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_usize()
    }
}

impl BinCodec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_str()
    }
}

impl<T: BinCodec> BinCodec for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: BinCodec> BinCodec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_length_prefix(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: BinCodec, B: BinCodec> BinCodec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: BinCodec, B: BinCodec, C: BinCodec> BinCodec for (A, B, C) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: BinCodec + Ord, V: BinCodec> BinCodec for BTreeMap<K, V> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_length_prefix(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(k, v).is_some() {
                return Err(CodecError::Invalid("duplicate map key".into()));
            }
        }
        Ok(out)
    }
}

impl<T: BinCodec + Ord> BinCodec for BTreeSet<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_length_prefix(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            if !out.insert(T::decode(r)?) {
                return Err(CodecError::Invalid("duplicate set element".into()));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Cluster, ClusterId, Clustering, ObjectId, Operation, OperationBatch, Record, RecordBuilder,
        Snapshot,
    };

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn roundtrip<T: BinCodec + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = value.encode_to_vec();
        let decoded = T::decode_exact(&bytes).expect("decode");
        assert_eq!(&decoded, value);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&String::from("hëllo wörld"));
        roundtrip(&Some(42u64));
        roundtrip(&Option::<u64>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&(3u64, 0.25f64));
        // f64 round-trips preserve exact bits, including NaN payloads.
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let bytes = weird.encode_to_vec();
        let back = f64::decode_exact(&bytes).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_reject_duplicates() {
        // Two identical set elements on the wire.
        let mut w = ByteWriter::new();
        w.put_u64(2);
        w.put_u64(7);
        w.put_u64(7);
        assert!(matches!(
            BTreeSet::<u64>::decode_exact(w.as_slice()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn corrupt_lengths_are_rejected_without_allocating() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // declared length
        assert!(matches!(
            Vec::<u64>::decode_exact(w.as_slice()),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn records_roundtrip_bit_exactly() {
        let rec = RecordBuilder::new()
            .text("title", "Efficient Dynamic Clustering")
            .text("venue", "EDBT")
            .number("year", 2022.0)
            .vector(vec![0.1, 0.2, f64::MIN_POSITIVE])
            .entity(7)
            .build();
        roundtrip(&rec);
        roundtrip(&Record::new());
        roundtrip(&Record::from_vector(vec![1.0, -0.0]));
    }

    #[test]
    fn operations_and_batches_roundtrip() {
        let rec = RecordBuilder::new().text("t", "x").build();
        roundtrip(&Operation::Add {
            id: oid(1),
            record: rec.clone(),
        });
        roundtrip(&Operation::Remove { id: oid(2) });
        roundtrip(&Operation::Update {
            id: oid(3),
            record: rec.clone(),
        });
        let batch = OperationBatch::from_ops(vec![
            Operation::Add {
                id: oid(1),
                record: rec.clone(),
            },
            Operation::Remove { id: oid(9) },
            Operation::Update {
                id: oid(1),
                record: rec,
            },
        ]);
        roundtrip(&batch);
        roundtrip(&OperationBatch::new());
        roundtrip(&Snapshot::new(4, batch));
    }

    #[test]
    fn clustering_roundtrips_with_id_watermark() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        let a = c.cluster_of(oid(1)).unwrap();
        let b = c.cluster_of(oid(3)).unwrap();
        c.merge(a, b).unwrap(); // advances the id generator past its clusters
        let bytes = c.encode_to_vec();
        let mut back = Clustering::decode_exact(&bytes).unwrap();
        assert!(c.delta(&back).is_unchanged());
        assert_eq!(back.cluster_ids(), c.cluster_ids());
        // The id generator watermark survives: the next allocated id matches.
        let ba = back.cluster_ids()[0];
        let oid_new = oid(99);
        back.create_cluster([oid_new]).unwrap();
        let mut original = c.clone();
        original.create_cluster([oid_new]).unwrap();
        assert_eq!(back.cluster_of(oid_new), original.cluster_of(oid_new));
        assert!(back.contains_cluster(ba));
    }

    #[test]
    fn clustering_decode_rejects_overlapping_clusters() {
        // Hand-craft a clustering whose two clusters share object 1.
        let mut w = ByteWriter::new();
        w.put_u64(10); // id watermark
        w.put_u64(2); // cluster count
        ClusterId::new(0).encode(&mut w);
        Cluster::from_members([oid(1)]).encode(&mut w);
        ClusterId::new(1).encode(&mut w);
        Cluster::from_members([oid(1), oid(2)]).encode(&mut w);
        assert!(matches!(
            Clustering::decode_exact(w.as_slice()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn clustering_decode_rejects_stale_id_watermark() {
        let mut w = ByteWriter::new();
        w.put_u64(0); // watermark below the stored cluster id
        w.put_u64(1);
        ClusterId::new(5).encode(&mut w);
        Cluster::from_members([oid(1)]).encode(&mut w);
        assert!(matches!(
            Clustering::decode_exact(w.as_slice()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn decode_exact_rejects_trailing_bytes() {
        let mut bytes = 7u64.encode_to_vec();
        bytes.push(0);
        assert!(matches!(
            u64::decode_exact(&bytes),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncated_input_is_detected() {
        // A truncated fixed-width value runs off the end of the input.
        let bytes = 7u64.encode_to_vec();
        assert!(matches!(
            u64::decode_exact(&bytes[..7]),
            Err(CodecError::UnexpectedEof { .. })
        ));
        // A truncated length-prefixed value fails the plausibility check
        // before any byte of the payload is read.
        let bytes = String::from("hello").encode_to_vec();
        assert!(matches!(
            String::decode_exact(&bytes[..bytes.len() - 1]),
            Err(CodecError::BadLength { .. })
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = CodecError::BadTag {
            what: "Operation",
            tag: 9,
        };
        assert!(e.to_string().contains("Operation"));
        assert!(CodecError::BadUtf8.to_string().contains("UTF-8"));
    }
}
