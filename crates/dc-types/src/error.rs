//! Error type shared by the data-model containers.

use crate::{ClusterId, ObjectId};
use std::fmt;

/// Errors raised by [`Dataset`](crate::Dataset) and
/// [`Clustering`](crate::Clustering) when an operation refers to state that
/// does not exist or would violate a structural invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The object id is not present in the dataset / clustering.
    UnknownObject(ObjectId),
    /// The cluster id is not present in the clustering.
    UnknownCluster(ClusterId),
    /// Attempted to add an object that already exists.
    DuplicateObject(ObjectId),
    /// Attempted to place an object that is already assigned to a cluster.
    AlreadyClustered(ObjectId, ClusterId),
    /// A split was requested that would leave one side empty.
    EmptySplit(ClusterId),
    /// A merge was requested between a cluster and itself.
    SelfMerge(ClusterId),
    /// A structural invariant of the clustering was violated (bug guard).
    InvariantViolation(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownObject(id) => write!(f, "unknown object {id}"),
            TypeError::UnknownCluster(id) => write!(f, "unknown cluster {id}"),
            TypeError::DuplicateObject(id) => write!(f, "object {id} already exists"),
            TypeError::AlreadyClustered(o, c) => {
                write!(f, "object {o} is already assigned to cluster {c}")
            }
            TypeError::EmptySplit(c) => {
                write!(f, "split of cluster {c} would produce an empty side")
            }
            TypeError::SelfMerge(c) => write!(f, "cannot merge cluster {c} with itself"),
            TypeError::InvariantViolation(msg) => write!(f, "clustering invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TypeError::UnknownObject(ObjectId::new(3));
        assert!(e.to_string().contains("r3"));
        let e = TypeError::AlreadyClustered(ObjectId::new(1), ClusterId::new(2));
        assert!(e.to_string().contains("r1"));
        assert!(e.to_string().contains("C2"));
        let e = TypeError::InvariantViolation("missing member".into());
        assert!(e.to_string().contains("missing member"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TypeError::SelfMerge(ClusterId::new(0)));
    }
}
