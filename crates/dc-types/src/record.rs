//! Object payloads.
//!
//! The paper evaluates DynamicC on textual datasets (Cora, MusicBrainz,
//! Febrl-synthetic), numerical datasets (Amazon Access, 3D Road Network), and
//! mixed ones (Table 1).  A [`Record`] therefore carries named textual fields
//! and/or a numeric feature vector; the similarity crate decides how to
//! compare two records based on their [`RecordKind`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The value of a single named field of a record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// A free-text field (e.g. a publication title or an artist name).
    Text(String),
    /// A numeric scalar field (e.g. a year).
    Number(f64),
}

impl FieldValue {
    /// The textual content, if this is a text field.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FieldValue::Text(s) => Some(s),
            FieldValue::Number(_) => None,
        }
    }

    /// The numeric content, if this is a number field.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            FieldValue::Text(_) => None,
            FieldValue::Number(x) => Some(*x),
        }
    }
}

/// What kind of payload a record predominantly carries.
///
/// This drives the default similarity measure chosen for a dataset
/// (Jaccard / trigram-cosine for textual data, Euclidean-derived similarity
/// for numeric data), mirroring Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// Textual record (named text fields).
    Textual,
    /// Numeric record (dense feature vector).
    Numeric,
    /// Both textual fields and a numeric vector are meaningful.
    Mixed,
}

/// A single database object.
///
/// Records are value types: updating an object replaces its record wholesale
/// (the paper models an update as a remove followed by an add, §6.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Named fields, ordered deterministically for reproducible tokenization.
    fields: BTreeMap<String, FieldValue>,
    /// Dense numeric feature vector (empty for purely textual records).
    vector: Vec<f64>,
    /// Optional ground-truth entity label (used only by evaluation and data
    /// generation, never by the clustering algorithms themselves).
    entity: Option<u64>,
}

impl Record {
    /// Create an empty record.  Prefer [`RecordBuilder`] for non-trivial
    /// construction.
    pub fn new() -> Self {
        Record {
            fields: BTreeMap::new(),
            vector: Vec::new(),
            entity: None,
        }
    }

    /// Create a purely numeric record from a feature vector.
    pub fn from_vector(vector: Vec<f64>) -> Self {
        Record {
            fields: BTreeMap::new(),
            vector,
            entity: None,
        }
    }

    /// Create a purely textual record from `(field name, text)` pairs.
    pub fn from_text_fields<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut r = Record::new();
        for (k, v) in pairs {
            r.fields.insert(k.into(), FieldValue::Text(v.into()));
        }
        r
    }

    /// Which kind of payload this record carries.
    pub fn kind(&self) -> RecordKind {
        match (self.fields.is_empty(), self.vector.is_empty()) {
            (false, false) => RecordKind::Mixed,
            (false, true) => RecordKind::Textual,
            (true, false) => RecordKind::Numeric,
            // An empty record is treated as textual with no tokens; it is
            // maximally dissimilar to everything.
            (true, true) => RecordKind::Textual,
        }
    }

    /// Named fields (deterministic iteration order).
    pub fn fields(&self) -> impl Iterator<Item = (&str, &FieldValue)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.get(name)
    }

    /// Set (or replace) a field.
    pub fn set_field(&mut self, name: impl Into<String>, value: FieldValue) {
        self.fields.insert(name.into(), value);
    }

    /// The numeric feature vector (may be empty).
    pub fn vector(&self) -> &[f64] {
        &self.vector
    }

    /// Replace the numeric feature vector.
    pub fn set_vector(&mut self, vector: Vec<f64>) {
        self.vector = vector;
    }

    /// Ground-truth entity label, if any (synthetic data only).
    pub fn entity(&self) -> Option<u64> {
        self.entity
    }

    /// Attach a ground-truth entity label.
    pub fn set_entity(&mut self, entity: u64) {
        self.entity = Some(entity);
    }

    /// Concatenation of all textual field values, lowercased, in field-name
    /// order.  This is the canonical string used by token- and trigram-based
    /// similarity measures.
    pub fn full_text(&self) -> String {
        let mut out = String::new();
        for (_, v) in self.fields.iter() {
            if let FieldValue::Text(s) = v {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&s.to_lowercase());
            }
        }
        out
    }

    /// Whitespace tokens of [`Record::full_text`].
    pub fn tokens(&self) -> Vec<String> {
        self.full_text()
            .split_whitespace()
            .map(|s| s.to_string())
            .collect()
    }

    /// Number of named fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

impl Default for Record {
    fn default() -> Self {
        Record::new()
    }
}

/// Fluent builder for [`Record`]s.
///
/// ```
/// use dc_types::RecordBuilder;
/// let rec = RecordBuilder::new()
///     .text("title", "Efficient Dynamic Clustering")
///     .text("venue", "EDBT")
///     .number("year", 2022.0)
///     .vector(vec![0.1, 0.2])
///     .entity(7)
///     .build();
/// assert_eq!(rec.field("venue").unwrap().as_text(), Some("EDBT"));
/// assert_eq!(rec.entity(), Some(7));
/// ```
#[derive(Debug, Default, Clone)]
pub struct RecordBuilder {
    record: Record,
}

impl RecordBuilder {
    /// Start building an empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a text field.
    pub fn text(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.record.set_field(name, FieldValue::Text(value.into()));
        self
    }

    /// Add a numeric scalar field.
    pub fn number(mut self, name: impl Into<String>, value: f64) -> Self {
        self.record.set_field(name, FieldValue::Number(value));
        self
    }

    /// Set the numeric feature vector.
    pub fn vector(mut self, vector: Vec<f64>) -> Self {
        self.record.set_vector(vector);
        self
    }

    /// Attach a ground-truth entity label.
    pub fn entity(mut self, entity: u64) -> Self {
        self.record.set_entity(entity);
        self
    }

    /// Finish building.
    pub fn build(self) -> Record {
        self.record
    }
}

const FIELD_TAG_TEXT: u8 = 0;
const FIELD_TAG_NUMBER: u8 = 1;

impl crate::codec::BinCodec for FieldValue {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        match self {
            FieldValue::Text(s) => {
                w.put_u8(FIELD_TAG_TEXT);
                w.put_str(s);
            }
            FieldValue::Number(x) => {
                w.put_u8(FIELD_TAG_NUMBER);
                w.put_f64(*x);
            }
        }
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        match r.get_u8()? {
            FIELD_TAG_TEXT => Ok(FieldValue::Text(r.get_str()?)),
            FIELD_TAG_NUMBER => Ok(FieldValue::Number(r.get_f64()?)),
            tag => Err(crate::codec::CodecError::BadTag {
                what: "FieldValue",
                tag,
            }),
        }
    }
}

impl crate::codec::BinCodec for Record {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_usize(self.field_count());
        for (name, value) in self.fields() {
            w.put_str(name);
            value.encode(w);
        }
        w.put_usize(self.vector.len());
        for &x in &self.vector {
            w.put_f64(x);
        }
        self.entity.encode(w);
    }
    fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let mut record = Record::new();
        // A named field is at least a length-prefixed name (8 bytes) plus a
        // tagged value (9 bytes); a vector element is 8 bytes.
        let fields = r.get_length_prefix(17)?;
        for _ in 0..fields {
            let name = r.get_str()?;
            let value = FieldValue::decode(r)?;
            if record.fields.insert(name.clone(), value).is_some() {
                return Err(CodecError::Invalid(format!("duplicate field '{name}'")));
            }
        }
        let dims = r.get_length_prefix(8)?;
        let mut vector = Vec::with_capacity(dims);
        for _ in 0..dims {
            vector.push(r.get_f64()?);
        }
        record.vector = vector;
        record.entity = Option::<u64>::decode(r)?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert_eq!(Record::new().kind(), RecordKind::Textual);
        assert_eq!(
            Record::from_vector(vec![1.0, 2.0]).kind(),
            RecordKind::Numeric
        );
        assert_eq!(
            Record::from_text_fields([("a", "x")]).kind(),
            RecordKind::Textual
        );
        let mixed = RecordBuilder::new()
            .text("a", "x")
            .vector(vec![1.0])
            .build();
        assert_eq!(mixed.kind(), RecordKind::Mixed);
    }

    #[test]
    fn full_text_is_lowercased_and_field_ordered() {
        let r = RecordBuilder::new()
            .text("b_second", "World")
            .text("a_first", "Hello")
            .build();
        assert_eq!(r.full_text(), "hello world");
        assert_eq!(r.tokens(), vec!["hello", "world"]);
    }

    #[test]
    fn numeric_fields_are_excluded_from_text() {
        let r = RecordBuilder::new()
            .text("title", "abc")
            .number("year", 1999.0)
            .build();
        assert_eq!(r.full_text(), "abc");
        assert_eq!(r.field("year").unwrap().as_number(), Some(1999.0));
        assert_eq!(r.field("year").unwrap().as_text(), None);
    }

    #[test]
    fn builder_sets_everything() {
        let r = RecordBuilder::new()
            .text("name", "n")
            .vector(vec![0.5, 0.5])
            .entity(3)
            .build();
        assert_eq!(r.vector(), &[0.5, 0.5]);
        assert_eq!(r.entity(), Some(3));
        assert_eq!(r.field_count(), 1);
    }

    #[test]
    fn set_field_replaces_existing_value() {
        let mut r = Record::from_text_fields([("t", "old")]);
        r.set_field("t", FieldValue::Text("new".into()));
        assert_eq!(r.field("t").unwrap().as_text(), Some("new"));
        assert_eq!(r.field_count(), 1);
    }

    #[test]
    fn empty_record_has_empty_text_and_tokens() {
        let r = Record::new();
        assert!(r.full_text().is_empty());
        assert!(r.tokens().is_empty());
        assert!(r.vector().is_empty());
    }
}
