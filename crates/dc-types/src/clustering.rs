//! Clustering representation and structural mutations.
//!
//! A [`Clustering`] is a partition of a set of objects into disjoint,
//! non-empty [`Cluster`]s.  The evolution operations the paper reasons about
//! (§4.1) — *merge* of two clusters, *split* of a cluster into two, and
//! *move* of objects between clusters (expressible as split + merge) — are
//! first-class methods here so that batch algorithms, baselines, and DynamicC
//! all mutate clusterings through the same audited interface.
//!
//! Two invariants are maintained at all times:
//!
//! 1. every object belongs to exactly one cluster (the membership index and
//!    the cluster contents agree), and
//! 2. no cluster is empty.
//!
//! `debug_assert`-style verification is available through
//! [`Clustering::check_invariants`], which the property tests call after
//! arbitrary operation sequences.

use crate::id::IdGenerator;
use crate::{ClusterId, ObjectId, Result, TypeError};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

thread_local! {
    static CLONES: Cell<u64> = const { Cell::new(0) };
}

/// Number of full [`Clustering`] clones performed by the current thread since
/// it started.  A clustering clone is O(objects) — cheap in absolute terms
/// but a smell on hot paths that are supposed to *maintain* state rather
/// than copy it (checkpoint encoding, serving rounds).  Tests bracket such
/// paths with this counter to pin them at zero, the same way
/// `dc_similarity::full_build_count` pins full aggregate builds.
///
/// The counter is thread-local, so assertions stay exact under parallel test
/// execution; clones performed on other threads are invisible to it.
pub fn clustering_clone_count() -> u64 {
    CLONES.with(|c| c.get())
}

/// A single cluster: a non-empty set of object ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    members: BTreeSet<ObjectId>,
}

impl Cluster {
    /// Create a cluster from an iterator of members.
    pub fn from_members<I: IntoIterator<Item = ObjectId>>(members: I) -> Self {
        Cluster {
            members: members.into_iter().collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never true for clusters stored in
    /// a [`Clustering`]).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.members.contains(&id)
    }

    /// Iterate over the members in id order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.members.iter().copied()
    }

    /// The members as an ordered set.
    pub fn members(&self) -> &BTreeSet<ObjectId> {
        &self.members
    }

    /// Whether this cluster is a singleton.
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// A partition of objects into disjoint non-empty clusters.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Clustering {
    clusters: BTreeMap<ClusterId, Cluster>,
    membership: BTreeMap<ObjectId, ClusterId>,
    ids: IdGenerator,
}

impl Clone for Clustering {
    fn clone(&self) -> Self {
        CLONES.with(|c| c.set(c.get() + 1));
        Clustering {
            clusters: self.clusters.clone(),
            membership: self.membership.clone(),
            ids: self.ids.clone(),
        }
    }
}

impl Clustering {
    /// Create an empty clustering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a clustering in which every given object is a singleton
    /// cluster — the initial state of every batch run in §4.2.
    pub fn singletons<I: IntoIterator<Item = ObjectId>>(objects: I) -> Self {
        let mut c = Clustering::new();
        for o in objects {
            c.create_cluster([o]).expect("fresh object cannot collide");
        }
        c
    }

    /// Create a clustering from explicit groups of objects.
    ///
    /// Useful in tests and when importing ground truth; the groups must be
    /// disjoint and non-empty.
    pub fn from_groups<I, G>(groups: I) -> Result<Self>
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = ObjectId>,
    {
        let mut c = Clustering::new();
        for g in groups {
            let members: Vec<ObjectId> = g.into_iter().collect();
            if members.is_empty() {
                return Err(TypeError::InvariantViolation(
                    "empty group in from_groups".into(),
                ));
            }
            c.create_cluster(members)?;
        }
        Ok(c)
    }

    // ------------------------------------------------------------------
    // Read access
    // ------------------------------------------------------------------

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clustered objects.
    pub fn object_count(&self) -> usize {
        self.membership.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster with id `cid`, if it exists.
    pub fn cluster(&self, cid: ClusterId) -> Option<&Cluster> {
        self.clusters.get(&cid)
    }

    /// The cluster containing object `oid`, if the object is clustered.
    pub fn cluster_of(&self, oid: ObjectId) -> Option<ClusterId> {
        self.membership.get(&oid).copied()
    }

    /// Whether the object is present in the clustering.
    pub fn contains_object(&self, oid: ObjectId) -> bool {
        self.membership.contains_key(&oid)
    }

    /// Whether the cluster id is present.
    pub fn contains_cluster(&self, cid: ClusterId) -> bool {
        self.clusters.contains_key(&cid)
    }

    /// Iterate over `(cluster id, cluster)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClusterId, &Cluster)> {
        self.clusters.iter().map(|(id, c)| (*id, c))
    }

    /// All cluster ids in id order.
    pub fn cluster_ids(&self) -> Vec<ClusterId> {
        self.clusters.keys().copied().collect()
    }

    /// All object ids in id order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.membership.keys().copied().collect()
    }

    /// Size of cluster `cid` (0 if absent).
    pub fn cluster_size(&self, cid: ClusterId) -> usize {
        self.clusters.get(&cid).map_or(0, Cluster::len)
    }

    /// The members of each cluster, as a vector of vectors, ordered by
    /// cluster id.  Convenient for snapshotting and evaluation.
    pub fn groups(&self) -> Vec<Vec<ObjectId>> {
        self.clusters.values().map(|c| c.iter().collect()).collect()
    }

    /// The id-generator watermark: the raw value the next allocated cluster
    /// id would take.  Persisted by the codec and partitioned by the sharded
    /// engine, because replaying the same structural changes from the same
    /// watermark must allocate the same ids.
    pub fn id_watermark(&self) -> u64 {
        self.ids.peek()
    }

    /// Raise the id watermark so the next allocated cluster id is at least
    /// `raw` (never lowers it).  Sharded serving uses this to move a shard's
    /// allocations into its own disjoint namespace — see
    /// [`shard_id_base`](crate::shard_id_base).
    pub fn set_id_watermark(&mut self, raw: u64) {
        self.ids.raise_to(raw);
    }

    // ------------------------------------------------------------------
    // Structural mutations
    // ------------------------------------------------------------------

    /// Insert a cluster under a caller-chosen id (rather than allocating a
    /// fresh one).  The id must be unused and the members unclustered; the
    /// id watermark is bumped past `cid` so later allocations cannot collide
    /// with it.  This is how the sharded engine re-creates clusters that
    /// keep their pre-partition ids, and how per-shard clusterings are
    /// merged back into one global view.
    pub fn insert_cluster_with_id<I: IntoIterator<Item = ObjectId>>(
        &mut self,
        cid: ClusterId,
        members: I,
    ) -> Result<()> {
        let members: BTreeSet<ObjectId> = members.into_iter().collect();
        if members.is_empty() {
            return Err(TypeError::InvariantViolation(
                "cannot create an empty cluster".into(),
            ));
        }
        if self.clusters.contains_key(&cid) {
            return Err(TypeError::InvariantViolation(format!(
                "cluster id {cid} is already in use"
            )));
        }
        for &o in &members {
            if let Some(existing) = self.membership.get(&o) {
                return Err(TypeError::AlreadyClustered(o, *existing));
            }
        }
        for &o in &members {
            self.membership.insert(o, cid);
        }
        self.clusters.insert(cid, Cluster { members });
        self.ids.bump_past(cid.raw());
        Ok(())
    }

    /// Create a new cluster containing exactly the given objects (which must
    /// not already be clustered).  Returns the new cluster's id.
    pub fn create_cluster<I: IntoIterator<Item = ObjectId>>(
        &mut self,
        members: I,
    ) -> Result<ClusterId> {
        let members: BTreeSet<ObjectId> = members.into_iter().collect();
        if members.is_empty() {
            return Err(TypeError::InvariantViolation(
                "cannot create an empty cluster".into(),
            ));
        }
        for &o in &members {
            if let Some(existing) = self.membership.get(&o) {
                return Err(TypeError::AlreadyClustered(o, *existing));
            }
        }
        let cid = self.ids.next_cluster();
        for &o in &members {
            self.membership.insert(o, cid);
        }
        self.clusters.insert(cid, Cluster { members });
        Ok(cid)
    }

    /// Add an unclustered object to an existing cluster.
    pub fn add_to_cluster(&mut self, oid: ObjectId, cid: ClusterId) -> Result<()> {
        if let Some(existing) = self.membership.get(&oid) {
            return Err(TypeError::AlreadyClustered(oid, *existing));
        }
        let cluster = self
            .clusters
            .get_mut(&cid)
            .ok_or(TypeError::UnknownCluster(cid))?;
        cluster.members.insert(oid);
        self.membership.insert(oid, cid);
        Ok(())
    }

    /// Remove an object from the clustering entirely (used when the object is
    /// deleted from the database).  If its cluster becomes empty, the cluster
    /// is dropped.  Returns the id of the cluster it was removed from.
    pub fn remove_object(&mut self, oid: ObjectId) -> Result<ClusterId> {
        let cid = self
            .membership
            .remove(&oid)
            .ok_or(TypeError::UnknownObject(oid))?;
        let drop_cluster = {
            let cluster = self
                .clusters
                .get_mut(&cid)
                .ok_or(TypeError::UnknownCluster(cid))?;
            cluster.members.remove(&oid);
            cluster.members.is_empty()
        };
        if drop_cluster {
            self.clusters.remove(&cid);
        }
        Ok(cid)
    }

    /// Merge two distinct clusters into a new cluster; the inputs are
    /// consumed and a fresh cluster id is returned (merge evolution, §4.1).
    pub fn merge(&mut self, a: ClusterId, b: ClusterId) -> Result<ClusterId> {
        if a == b {
            return Err(TypeError::SelfMerge(a));
        }
        if !self.clusters.contains_key(&a) {
            return Err(TypeError::UnknownCluster(a));
        }
        if !self.clusters.contains_key(&b) {
            return Err(TypeError::UnknownCluster(b));
        }
        let ca = self.clusters.remove(&a).expect("checked above");
        let cb = self.clusters.remove(&b).expect("checked above");
        let mut members = ca.members;
        members.extend(cb.members);
        let cid = self.ids.next_cluster();
        for &o in &members {
            self.membership.insert(o, cid);
        }
        self.clusters.insert(cid, Cluster { members });
        Ok(cid)
    }

    /// Split a cluster into two: the objects in `part` form one new cluster
    /// and the remaining objects the other (split evolution, §4.1).  Both
    /// sides must be non-empty and every member of `part` must belong to
    /// `cid`.  Returns `(cluster containing part, cluster containing rest)`.
    pub fn split(
        &mut self,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> Result<(ClusterId, ClusterId)> {
        let cluster = self
            .clusters
            .get(&cid)
            .ok_or(TypeError::UnknownCluster(cid))?;
        if part.is_empty() || part.len() >= cluster.members.len() {
            return Err(TypeError::EmptySplit(cid));
        }
        for o in part {
            if !cluster.members.contains(o) {
                return Err(TypeError::UnknownObject(*o));
            }
        }
        let cluster = self.clusters.remove(&cid).expect("checked above");
        let rest: BTreeSet<ObjectId> = cluster.members.difference(part).copied().collect();

        let part_id = self.ids.next_cluster();
        let rest_id = self.ids.next_cluster();
        for &o in part {
            self.membership.insert(o, part_id);
        }
        for &o in &rest {
            self.membership.insert(o, rest_id);
        }
        self.clusters.insert(
            part_id,
            Cluster {
                members: part.clone(),
            },
        );
        self.clusters.insert(rest_id, Cluster { members: rest });
        Ok((part_id, rest_id))
    }

    /// Move a single object from its current cluster into another existing
    /// cluster.  If the source cluster becomes empty it is dropped.  Move
    /// evolution is equivalent to split + merge (§4.1) but this direct method
    /// is convenient for baselines such as Greedy and for hill-climbing.
    pub fn move_object(&mut self, oid: ObjectId, target: ClusterId) -> Result<()> {
        let source = self
            .membership
            .get(&oid)
            .copied()
            .ok_or(TypeError::UnknownObject(oid))?;
        if !self.clusters.contains_key(&target) {
            return Err(TypeError::UnknownCluster(target));
        }
        if source == target {
            return Ok(());
        }
        let drop_source = {
            let src = self
                .clusters
                .get_mut(&source)
                .expect("membership is consistent");
            src.members.remove(&oid);
            src.members.is_empty()
        };
        if drop_source {
            self.clusters.remove(&source);
        }
        self.clusters
            .get_mut(&target)
            .expect("checked above")
            .members
            .insert(oid);
        self.membership.insert(oid, target);
        Ok(())
    }

    /// Move a single object out of its current cluster into a brand new
    /// singleton cluster.  Returns the new cluster id.  This is the "split a
    /// single object out" primitive used by the split heuristic (§6.3).
    pub fn isolate_object(&mut self, oid: ObjectId) -> Result<ClusterId> {
        let source = self
            .membership
            .get(&oid)
            .copied()
            .ok_or(TypeError::UnknownObject(oid))?;
        let source_size = self.cluster_size(source);
        if source_size <= 1 {
            // Already a singleton; nothing to do, return its current cluster.
            return Ok(source);
        }
        let mut part = BTreeSet::new();
        part.insert(oid);
        let (part_id, _rest_id) = self.split(source, &part)?;
        Ok(part_id)
    }

    // ------------------------------------------------------------------
    // Diagnostics
    // ------------------------------------------------------------------

    /// Verify the structural invariants, returning a descriptive error when
    /// one is violated.  Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<()> {
        let mut seen = BTreeSet::new();
        for (cid, cluster) in &self.clusters {
            if cluster.members.is_empty() {
                return Err(TypeError::InvariantViolation(format!(
                    "cluster {cid} is empty"
                )));
            }
            for &o in &cluster.members {
                if !seen.insert(o) {
                    return Err(TypeError::InvariantViolation(format!(
                        "object {o} appears in more than one cluster"
                    )));
                }
                match self.membership.get(&o) {
                    Some(m) if *m == *cid => {}
                    Some(m) => {
                        return Err(TypeError::InvariantViolation(format!(
                            "object {o} is in cluster {cid} but membership says {m}"
                        )))
                    }
                    None => {
                        return Err(TypeError::InvariantViolation(format!(
                            "object {o} is in cluster {cid} but has no membership entry"
                        )))
                    }
                }
            }
        }
        if seen.len() != self.membership.len() {
            return Err(TypeError::InvariantViolation(format!(
                "membership has {} entries but clusters cover {} objects",
                self.membership.len(),
                seen.len()
            )));
        }
        Ok(())
    }

    /// Summarize the structural difference between `self` (old) and `other`
    /// (new) clusterings over the same (or overlapping) object sets.
    pub fn delta(&self, other: &Clustering) -> ClusteringDelta {
        let old_groups: BTreeSet<BTreeSet<ObjectId>> =
            self.clusters.values().map(|c| c.members.clone()).collect();
        let new_groups: BTreeSet<BTreeSet<ObjectId>> =
            other.clusters.values().map(|c| c.members.clone()).collect();
        let unchanged = old_groups.intersection(&new_groups).count();
        ClusteringDelta {
            old_clusters: old_groups.len(),
            new_clusters: new_groups.len(),
            unchanged_clusters: unchanged,
            vanished_clusters: old_groups.len() - unchanged,
            created_clusters: new_groups.len() - unchanged,
        }
    }

    /// The size distribution `(min, mean, max)` of the clusters.
    pub fn size_stats(&self) -> (usize, f64, usize) {
        if self.clusters.is_empty() {
            return (0, 0.0, 0);
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        for c in self.clusters.values() {
            min = min.min(c.len());
            max = max.max(c.len());
            sum += c.len();
        }
        (min, sum as f64 / self.clusters.len() as f64, max)
    }
}

/// Structural summary of the difference between two clusterings: how many
/// clusters survived unchanged, vanished, or were created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusteringDelta {
    /// Number of clusters in the old clustering.
    pub old_clusters: usize,
    /// Number of clusters in the new clustering.
    pub new_clusters: usize,
    /// Number of clusters present (with identical membership) in both.
    pub unchanged_clusters: usize,
    /// Old clusters whose exact membership no longer exists.
    pub vanished_clusters: usize,
    /// New clusters whose exact membership did not exist before.
    pub created_clusters: usize,
}

impl ClusteringDelta {
    /// Whether the two clusterings are structurally identical.
    pub fn is_unchanged(&self) -> bool {
        self.vanished_clusters == 0 && self.created_clusters == 0
    }
}

impl crate::codec::BinCodec for Cluster {
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        self.members.encode(w);
    }
    fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> std::result::Result<Self, crate::codec::CodecError> {
        let members = BTreeSet::<ObjectId>::decode(r)?;
        if members.is_empty() {
            return Err(crate::codec::CodecError::Invalid("empty cluster".into()));
        }
        Ok(Cluster { members })
    }
}

impl crate::codec::BinCodec for Clustering {
    /// A clustering is encoded as its cluster map plus the id generator's
    /// watermark.  The watermark matters for recovery bit-identity: the next
    /// merge or split after a restart must allocate exactly the cluster id
    /// the uninterrupted run would have allocated.
    fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_u64(self.ids.peek());
        w.put_usize(self.clusters.len());
        for (cid, cluster) in &self.clusters {
            cid.encode(w);
            cluster.encode(w);
        }
    }
    fn decode(
        r: &mut crate::codec::ByteReader<'_>,
    ) -> std::result::Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let next_id = r.get_u64()?;
        // A cluster entry is at least an 8-byte id plus a set with an 8-byte
        // length prefix and one 8-byte member.
        let count = r.get_length_prefix(24)?;
        let mut clustering = Clustering::new();
        clustering.ids = IdGenerator::starting_at(next_id);
        for _ in 0..count {
            let cid = ClusterId::decode(r)?;
            let cluster = Cluster::decode(r)?;
            if cid.raw() >= next_id {
                return Err(CodecError::Invalid(format!(
                    "cluster id {cid} at or above the id watermark {next_id}"
                )));
            }
            if clustering.clusters.contains_key(&cid) {
                return Err(CodecError::Invalid(format!("duplicate cluster id {cid}")));
            }
            for oid in cluster.iter() {
                if clustering.membership.insert(oid, cid).is_some() {
                    return Err(CodecError::Invalid(format!(
                        "object {oid} appears in more than one cluster"
                    )));
                }
            }
            clustering.clusters.insert(cid, cluster);
        }
        Ok(clustering)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    fn set(ids: &[u64]) -> BTreeSet<ObjectId> {
        ids.iter().map(|&i| oid(i)).collect()
    }

    #[test]
    fn singletons_constructor() {
        let c = Clustering::singletons((0..5).map(oid));
        assert_eq!(c.cluster_count(), 5);
        assert_eq!(c.object_count(), 5);
        for (_, cl) in c.iter() {
            assert!(cl.is_singleton());
        }
        c.check_invariants().unwrap();
    }

    #[test]
    fn from_groups_builds_partition() {
        let c = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(oid(1)), c.cluster_of(oid(2)));
        assert_ne!(c.cluster_of(oid(1)), c.cluster_of(oid(3)));
        assert!(Clustering::from_groups([Vec::<ObjectId>::new()]).is_err());
    }

    #[test]
    fn merge_combines_members_and_retires_inputs() {
        let mut c = Clustering::singletons([oid(1), oid(2), oid(3)]);
        let a = c.cluster_of(oid(1)).unwrap();
        let b = c.cluster_of(oid(2)).unwrap();
        let merged = c.merge(a, b).unwrap();
        assert_eq!(c.cluster_count(), 2);
        assert!(!c.contains_cluster(a));
        assert!(!c.contains_cluster(b));
        assert_eq!(c.cluster_of(oid(1)), Some(merged));
        assert_eq!(c.cluster_of(oid(2)), Some(merged));
        assert_eq!(c.cluster_size(merged), 2);
        c.check_invariants().unwrap();
    }

    #[test]
    fn merge_errors() {
        let mut c = Clustering::singletons([oid(1)]);
        let a = c.cluster_of(oid(1)).unwrap();
        assert_eq!(c.merge(a, a), Err(TypeError::SelfMerge(a)));
        assert!(matches!(
            c.merge(a, ClusterId::new(999)),
            Err(TypeError::UnknownCluster(_))
        ));
    }

    #[test]
    fn split_partitions_cluster() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)]]).unwrap();
        let cid = c.cluster_of(oid(1)).unwrap();
        let (p, r) = c.split(cid, &set(&[1, 2])).unwrap();
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(oid(1)), Some(p));
        assert_eq!(c.cluster_of(oid(2)), Some(p));
        assert_eq!(c.cluster_of(oid(3)), Some(r));
        assert_eq!(c.cluster_of(oid(4)), Some(r));
        assert!(!c.contains_cluster(cid));
        c.check_invariants().unwrap();
    }

    #[test]
    fn split_rejects_degenerate_partitions() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2)]]).unwrap();
        let cid = c.cluster_of(oid(1)).unwrap();
        assert_eq!(c.split(cid, &set(&[])), Err(TypeError::EmptySplit(cid)));
        assert_eq!(c.split(cid, &set(&[1, 2])), Err(TypeError::EmptySplit(cid)));
        assert!(matches!(
            c.split(cid, &set(&[99])),
            Err(TypeError::UnknownObject(_))
        ));
    }

    #[test]
    fn move_object_between_clusters_drops_empty_source() {
        let mut c = Clustering::from_groups([vec![oid(1)], vec![oid(2), oid(3)]]).unwrap();
        let source = c.cluster_of(oid(1)).unwrap();
        let target = c.cluster_of(oid(2)).unwrap();
        c.move_object(oid(1), target).unwrap();
        assert_eq!(c.cluster_count(), 1);
        assert!(!c.contains_cluster(source));
        assert_eq!(c.cluster_of(oid(1)), Some(target));
        c.check_invariants().unwrap();
        // Moving into the same cluster is a no-op.
        c.move_object(oid(1), target).unwrap();
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn isolate_object_creates_singleton() {
        let mut c = Clustering::from_groups([vec![oid(1), oid(2), oid(3)]]).unwrap();
        let new_cid = c.isolate_object(oid(2)).unwrap();
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(oid(2)), Some(new_cid));
        assert!(c.cluster(new_cid).unwrap().is_singleton());
        // Isolating an object that is already a singleton is a no-op.
        let again = c.isolate_object(oid(2)).unwrap();
        assert_eq!(again, new_cid);
        c.check_invariants().unwrap();
    }

    #[test]
    fn remove_object_drops_empty_cluster() {
        let mut c = Clustering::from_groups([vec![oid(1)], vec![oid(2), oid(3)]]).unwrap();
        let single = c.cluster_of(oid(1)).unwrap();
        let removed_from = c.remove_object(oid(1)).unwrap();
        assert_eq!(removed_from, single);
        assert!(!c.contains_cluster(single));
        assert_eq!(c.object_count(), 2);
        assert!(c.remove_object(oid(1)).is_err());
        c.check_invariants().unwrap();
    }

    #[test]
    fn add_to_cluster_and_errors() {
        let mut c = Clustering::from_groups([vec![oid(1)]]).unwrap();
        let cid = c.cluster_of(oid(1)).unwrap();
        c.add_to_cluster(oid(2), cid).unwrap();
        assert_eq!(c.cluster_size(cid), 2);
        assert!(matches!(
            c.add_to_cluster(oid(2), cid),
            Err(TypeError::AlreadyClustered(_, _))
        ));
        assert!(matches!(
            c.add_to_cluster(oid(3), ClusterId::new(1234)),
            Err(TypeError::UnknownCluster(_))
        ));
    }

    #[test]
    fn insert_cluster_with_id_keeps_the_id_and_bumps_the_watermark() {
        let mut c = Clustering::new();
        c.insert_cluster_with_id(ClusterId::new(7), [oid(1), oid(2)])
            .unwrap();
        assert_eq!(c.cluster_of(oid(1)), Some(ClusterId::new(7)));
        assert!(c.id_watermark() > 7, "watermark must move past the id");
        c.check_invariants().unwrap();
        // Duplicate ids and already-clustered members are rejected.
        assert!(c
            .insert_cluster_with_id(ClusterId::new(7), [oid(3)])
            .is_err());
        assert!(matches!(
            c.insert_cluster_with_id(ClusterId::new(9), [oid(1)]),
            Err(TypeError::AlreadyClustered(_, _))
        ));
        assert!(c
            .insert_cluster_with_id(ClusterId::new(10), std::iter::empty())
            .is_err());
    }

    #[test]
    fn set_id_watermark_raises_but_never_lowers() {
        let mut c = Clustering::singletons([oid(1), oid(2)]);
        let before = c.id_watermark();
        c.set_id_watermark(before + 100);
        assert_eq!(c.id_watermark(), before + 100);
        c.set_id_watermark(1);
        assert_eq!(c.id_watermark(), before + 100);
        let fresh = c.create_cluster([oid(3)]).unwrap();
        assert_eq!(fresh.raw(), before + 100);
    }

    #[test]
    fn delta_detects_changes() {
        let a = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        let b = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3), oid(4)]]).unwrap();
        let d = a.delta(&b);
        assert_eq!(d.unchanged_clusters, 1);
        assert_eq!(d.vanished_clusters, 1);
        assert_eq!(d.created_clusters, 1);
        assert!(!d.is_unchanged());
        assert!(a.delta(&a).is_unchanged());
    }

    #[test]
    fn size_stats() {
        let c = Clustering::from_groups([vec![oid(1)], vec![oid(2), oid(3), oid(4)]]).unwrap();
        let (min, mean, max) = c.size_stats();
        assert_eq!(min, 1);
        assert_eq!(max, 3);
        assert!((mean - 2.0).abs() < 1e-12);
        assert_eq!(Clustering::new().size_stats(), (0, 0.0, 0));
    }

    #[test]
    fn groups_returns_all_members() {
        let c = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)]]).unwrap();
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
        assert_eq!(groups.len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random sequence of structural operations applied to a clustering
    /// over objects 0..n must preserve the partition invariants.
    #[derive(Debug, Clone)]
    enum Op {
        Merge(usize, usize),
        Isolate(usize),
        Move(usize, usize),
        Remove(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Merge(a, b)),
            (0usize..32).prop_map(Op::Isolate),
            (0usize..32, 0usize..32).prop_map(|(a, b)| Op::Move(a, b)),
            (0usize..32).prop_map(Op::Remove),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn invariants_hold_under_random_operations(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let n = 16u64;
            let mut c = Clustering::singletons((0..n).map(ObjectId::new));
            for op in ops {
                let cids = c.cluster_ids();
                let oids = c.object_ids();
                if oids.is_empty() { break; }
                match op {
                    Op::Merge(a, b) => {
                        if cids.len() >= 2 {
                            let a = cids[a % cids.len()];
                            let b = cids[b % cids.len()];
                            if a != b { c.merge(a, b).unwrap(); }
                        }
                    }
                    Op::Isolate(i) => {
                        let o = oids[i % oids.len()];
                        c.isolate_object(o).unwrap();
                    }
                    Op::Move(i, j) => {
                        let o = oids[i % oids.len()];
                        let t = cids[j % cids.len()];
                        if c.contains_cluster(t) {
                            c.move_object(o, t).unwrap();
                        }
                    }
                    Op::Remove(i) => {
                        let o = oids[i % oids.len()];
                        c.remove_object(o).unwrap();
                    }
                }
                prop_assert!(c.check_invariants().is_ok());
            }
            // All surviving objects are covered exactly once.
            let covered: usize = c.groups().iter().map(Vec::len).sum();
            prop_assert_eq!(covered, c.object_count());
        }
    }
}
