//! The mutable collection of live objects.
//!
//! A [`Dataset`] is the "database" of the paper: a set of objects identified
//! by [`ObjectId`] whose records are continuously added, removed, and
//! updated.  It also knows how to apply an [`OperationBatch`], which is how
//! the dynamic workloads of §7 are replayed.

use crate::id::IdGenerator;
use crate::{ObjectId, Operation, OperationBatch, Record, Result, TypeError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A mutable set of live objects.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    objects: BTreeMap<ObjectId, Record>,
    ids: IdGenerator,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a dataset from pre-assigned `(id, record)` pairs.
    ///
    /// The internal id generator is bumped past the largest provided id so
    /// that subsequently generated ids never collide.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (ObjectId, Record)>,
    {
        let mut ds = Dataset::new();
        for (id, rec) in pairs {
            ds.ids.bump_past(id.raw());
            ds.objects.insert(id, rec);
        }
        ds
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether an object is live.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Look up the record of a live object.
    pub fn record(&self, id: ObjectId) -> Option<&Record> {
        self.objects.get(&id)
    }

    /// Iterate over all live objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Record)> {
        self.objects.iter().map(|(id, r)| (*id, r))
    }

    /// All live object ids in id order.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Insert a new object with a freshly generated id.
    pub fn insert(&mut self, record: Record) -> ObjectId {
        let id = self.ids.next_object();
        self.objects.insert(id, record);
        id
    }

    /// Insert a new object under a caller-chosen id.
    ///
    /// Fails with [`TypeError::DuplicateObject`] if the id is already live.
    pub fn insert_with_id(&mut self, id: ObjectId, record: Record) -> Result<()> {
        if self.objects.contains_key(&id) {
            return Err(TypeError::DuplicateObject(id));
        }
        self.ids.bump_past(id.raw());
        self.objects.insert(id, record);
        Ok(())
    }

    /// Remove a live object, returning its record.
    pub fn remove(&mut self, id: ObjectId) -> Result<Record> {
        self.objects.remove(&id).ok_or(TypeError::UnknownObject(id))
    }

    /// Replace the record of a live object, returning the previous record.
    pub fn update(&mut self, id: ObjectId, record: Record) -> Result<Record> {
        match self.objects.get_mut(&id) {
            Some(slot) => Ok(std::mem::replace(slot, record)),
            None => Err(TypeError::UnknownObject(id)),
        }
    }

    /// Apply a single operation.
    pub fn apply(&mut self, op: &Operation) -> Result<()> {
        match op {
            Operation::Add { id, record } => self.insert_with_id(*id, record.clone()),
            Operation::Remove { id } => self.remove(*id).map(|_| ()),
            Operation::Update { id, record } => self.update(*id, record.clone()).map(|_| ()),
        }
    }

    /// Apply every operation of a batch, in order.
    ///
    /// Stops at (and returns) the first error; earlier operations remain
    /// applied, matching the semantics of replaying a log.
    pub fn apply_batch(&mut self, batch: &OperationBatch) -> Result<()> {
        for op in batch.iter() {
            self.apply(op)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordBuilder;

    fn rec(name: &str) -> Record {
        RecordBuilder::new().text("name", name).build()
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut ds = Dataset::new();
        let a = ds.insert(rec("a"));
        let b = ds.insert(rec("b"));
        assert_ne!(a, b);
        assert_eq!(ds.len(), 2);
        assert!(ds.contains(a));
        assert_eq!(
            ds.record(a).unwrap().field("name").unwrap().as_text(),
            Some("a")
        );

        let removed = ds.remove(a).unwrap();
        assert_eq!(removed.field("name").unwrap().as_text(), Some("a"));
        assert!(!ds.contains(a));
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn remove_unknown_is_an_error() {
        let mut ds = Dataset::new();
        assert_eq!(
            ds.remove(ObjectId::new(99)),
            Err(TypeError::UnknownObject(ObjectId::new(99)))
        );
    }

    #[test]
    fn insert_with_id_rejects_duplicates_and_bumps_generator() {
        let mut ds = Dataset::new();
        ds.insert_with_id(ObjectId::new(10), rec("x")).unwrap();
        assert_eq!(
            ds.insert_with_id(ObjectId::new(10), rec("y")),
            Err(TypeError::DuplicateObject(ObjectId::new(10)))
        );
        // Freshly generated ids must not collide with the explicit one.
        let fresh = ds.insert(rec("z"));
        assert!(fresh.raw() > 10);
    }

    #[test]
    fn update_replaces_record() {
        let mut ds = Dataset::new();
        let id = ds.insert(rec("old"));
        let old = ds.update(id, rec("new")).unwrap();
        assert_eq!(old.field("name").unwrap().as_text(), Some("old"));
        assert_eq!(
            ds.record(id).unwrap().field("name").unwrap().as_text(),
            Some("new")
        );
        assert!(ds.update(ObjectId::new(1234), rec("nope")).is_err());
    }

    #[test]
    fn apply_batch_replays_operations_in_order() {
        let mut ds = Dataset::new();
        let id0 = ObjectId::new(0);
        let id1 = ObjectId::new(1);
        let mut batch = OperationBatch::new();
        batch.push(Operation::Add {
            id: id0,
            record: rec("a"),
        });
        batch.push(Operation::Add {
            id: id1,
            record: rec("b"),
        });
        batch.push(Operation::Update {
            id: id0,
            record: rec("a2"),
        });
        batch.push(Operation::Remove { id: id1 });
        ds.apply_batch(&batch).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(
            ds.record(id0).unwrap().field("name").unwrap().as_text(),
            Some("a2")
        );
    }

    #[test]
    fn from_pairs_preserves_ids() {
        let ds = Dataset::from_pairs([
            (ObjectId::new(3), rec("three")),
            (ObjectId::new(1), rec("one")),
        ]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.ids(), vec![ObjectId::new(1), ObjectId::new(3)]);
    }

    #[test]
    fn iter_is_in_id_order() {
        let mut ds = Dataset::new();
        ds.insert_with_id(ObjectId::new(5), rec("e")).unwrap();
        ds.insert_with_id(ObjectId::new(2), rec("b")).unwrap();
        let order: Vec<u64> = ds.iter().map(|(id, _)| id.raw()).collect();
        assert_eq!(order, vec![2, 5]);
    }
}
