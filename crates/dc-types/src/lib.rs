//! # dc-types
//!
//! Core data model shared by every crate in the DynamicC workspace.
//!
//! The DynamicC paper ("Efficient Dynamic Clustering: Capturing Patterns from
//! Historical Cluster Evolution", EDBT 2022) operates on a *database of
//! objects* that is continuously modified by add / remove / update
//! operations, and on *clusterings* of those objects that must be kept fresh
//! as the database changes.  This crate defines the vocabulary used across
//! the workspace:
//!
//! * [`ObjectId`] / [`ClusterId`] — cheap copyable identifiers.
//! * [`Record`] — an object's payload: textual fields, token sets, and/or a
//!   numeric feature vector (the paper's datasets are textual, numerical, or
//!   mixed; see Table 1 of the paper).
//! * [`Dataset`] — the mutable collection of live objects.
//! * [`Operation`] / [`OperationBatch`] — the dynamic workload primitives of
//!   §3.1 (Adding, Removing, Updating).
//! * [`Snapshot`] — one round of the dynamic process (§7.2): a batch of
//!   operations applied between two re-clusterings.
//! * [`Clustering`] / [`Cluster`] — a partition of the live objects, with the
//!   structural mutations the paper reasons about (merge, split, move).
//! * [`codec`] — the hand-rolled binary wire format ([`BinCodec`]) used by
//!   the `dc-storage` durability subsystem, with impls living next to the
//!   types they serialize.
//!
//! Everything here is deliberately free of similarity or objective logic:
//! those live in `dc-similarity` and `dc-objective`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clustering;
pub mod codec;
pub mod dataset;
pub mod error;
pub mod id;
pub mod operation;
pub mod record;
pub mod snapshot;

pub use clustering::{clustering_clone_count, Cluster, Clustering, ClusteringDelta};
pub use codec::{crc32, BinCodec, ByteReader, ByteWriter, CodecError};
pub use dataset::Dataset;
pub use error::TypeError;
pub use id::{shard_id_base, ClusterId, ObjectId, MAX_SHARDS, SHARD_ID_BITS, SHARD_ID_SHIFT};
pub use operation::{Operation, OperationBatch, OperationKind};
pub use record::{FieldValue, Record, RecordBuilder, RecordKind};
pub use snapshot::{Snapshot, SnapshotStats};

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, TypeError>;
