//! Fixture-driven positive/negative cases for every lint rule, plus the
//! baseline machinery and the self-check pinning `LINT_BASELINE.json` to a
//! fresh scan of this very workspace, bit for bit.
//!
//! Each fixture under `tests/fixtures/<case>/` is a miniature workspace
//! tree (`crates/<name>/src/*.rs`, optionally a `README.md` catalog) that
//! is scan *input* — the files are never compiled.

use dc_lint::baseline::{from_json, gate, rebuild, to_json, Baseline, Entry};
use dc_lint::rules::Finding;
use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

fn scan(case: &str) -> Vec<Finding> {
    dc_lint::scan_workspace(&fixture_root(case)).expect("fixture scans")
}

/// (rule, file, token) triples for compact assertions.
fn keys(findings: &[Finding]) -> Vec<(String, String, String)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.token.clone()))
        .collect()
}

#[test]
fn r1_flags_panics_in_serving_code_only() {
    let findings = scan("r1");
    assert!(
        findings.iter().all(|f| f.rule == "R1"),
        "only R1 fires in this fixture: {findings:?}"
    );
    // Every finding is in the serving crate; the dc-eval unwrap is exempt.
    assert!(findings
        .iter()
        .all(|f| f.file.starts_with("crates/dc-core/")));

    let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
    assert_eq!(
        tokens,
        [
            ".unwrap(",
            ".expect(",
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
            ".unwrap(" // after_test_mod: code after the test region counts
        ],
        "positives fire once each; comments, strings, unwrap_or_else, \
         allow-tagged sites, and #[cfg(test)] code never fire"
    );
    // The two allow-tagged expects (preceding-line and same-line forms)
    // are suppressed: exactly one .expect( finding survives.
    assert_eq!(tokens.iter().filter(|t| **t == ".expect(").count(), 1);
}

#[test]
fn r2_flags_nondeterminism_everywhere_but_telemetry() {
    let findings = scan("r2");
    assert!(findings.iter().all(|f| f.rule == "R2"));
    // The telemetry crate's clock reads are the allowed authority.
    assert!(
        findings
            .iter()
            .all(|f| f.file.starts_with("crates/dc-core/")),
        "dc-telemetry is exempt: {findings:?}"
    );
    let count = |token: &str| findings.iter().filter(|f| f.token == token).count();
    assert_eq!(
        count("HashMap"),
        1,
        "use statement fires; tagged site and string are exempt"
    );
    assert_eq!(
        count("HashSet"),
        3,
        "use statement + two mentions in non-test code"
    );
    assert_eq!(count("Instant::now"), 1);
    assert_eq!(count("SystemTime::now"), 1);
    assert_eq!(count("mpsc"), 1);
    assert_eq!(count("thread::sleep"), 1);
    assert_eq!(findings.len(), 8);
}

#[test]
fn r3_pins_syncs_to_the_counted_wrapper() {
    let findings = scan("r3");
    assert!(findings.iter().all(|f| f.rule == "R3"));
    assert_eq!(
        keys(&findings),
        [
            (
                "R3".into(),
                "crates/dc-core/src/lib.rs".into(),
                "sync_all".into()
            ),
            (
                "R3".into(),
                "crates/dc-storage/src/lib.rs".into(),
                "sync_all".into()
            ),
            (
                "R3".into(),
                "crates/dc-storage/src/lib.rs".into(),
                "sync_data".into()
            ),
        ],
        "the sync inside fn sync_file in dc-storage's lib.rs is the one \
         exempt site; a same-named fn in another crate is not"
    );
}

#[test]
fn r4_checks_metric_names_against_shape_and_catalog() {
    let findings = scan("r4");
    assert!(findings.iter().all(|f| f.rule == "R4"));
    let tokens: Vec<&str> = findings.iter().map(|f| f.token.as_str()).collect();
    assert_eq!(
        tokens,
        [
            "Bad.Metric",
            "nodots",
            "oops.time_ns",
            "not.in.catalog",
            "Nope.Upper"
        ],
        "catalogued names, the bench.* wildcard, Span::start with a good \
         name, non-literal names, tagged sites, and test code are exempt"
    );
    // Each failure mode carries its own note.
    let note_of = |token: &str| {
        findings
            .iter()
            .find(|f| f.token == token)
            .map(|f| f.note.clone())
            .unwrap_or_default()
    };
    assert!(note_of("Bad.Metric").contains("not dotted-lowercase"));
    assert!(note_of("nodots").contains("not dotted-lowercase"));
    assert!(note_of("oops.time_ns").contains("_ns"));
    assert!(note_of("not.in.catalog").contains("catalog"));
}

#[test]
fn tag_rule_reports_malformed_and_reasonless_tags() {
    let findings = scan("tags");
    let tags: Vec<&Finding> = findings.iter().filter(|f| f.rule == "TAG").collect();
    let r1s: Vec<&Finding> = findings.iter().filter(|f| f.rule == "R1").collect();
    assert_eq!(
        tags.len(),
        3,
        "reasonless, malformed, empty-reason: {findings:?}"
    );
    assert_eq!(
        r1s.len(),
        3,
        "a tag without a usable reason suppresses nothing"
    );
    assert_eq!(findings.len(), 6);
}

#[test]
fn masking_yields_zero_findings_on_comment_and_literal_soup() {
    let findings = scan("masking");
    assert!(
        findings.is_empty(),
        "tokens in comments, strings, raw/byte strings, and char/lifetime \
         edge cases must never fire: {findings:?}"
    );
}

#[test]
fn scanner_is_deterministic_across_runs() {
    for case in ["r1", "r2", "r3", "r4", "tags", "masking"] {
        let a = scan(case);
        let b = scan(case);
        assert_eq!(a, b, "scan of {case} must be reproducible");
    }
}

// ---------------------------------------------------------------------------
// Baseline machinery.
// ---------------------------------------------------------------------------

fn finding(rule: &str, file: &str, line: usize, token: &str) -> Finding {
    Finding {
        rule: rule.into(),
        file: file.into(),
        line,
        token: token.into(),
        context: format!("{token} at {file}"),
        note: "n".into(),
    }
}

#[test]
fn gate_splits_new_grandfathered_and_stale() {
    let scan = vec![
        finding("R1", "a.rs", 10, ".unwrap("),
        finding("R1", "b.rs", 20, ".expect("),
    ];
    let base = Baseline {
        entries: vec![
            Entry {
                // Same site, different line: still grandfathered (matching
                // ignores line numbers so unrelated edits don't churn).
                finding: finding("R1", "a.rs", 99, ".unwrap("),
                reason: "old".into(),
            },
            Entry {
                finding: finding("R3", "gone.rs", 5, "sync_all"),
                reason: "stale".into(),
            },
        ],
    };
    let result = gate(&scan, &base);
    assert_eq!(result.grandfathered, 1);
    assert_eq!(
        keys(&result.new),
        [("R1".into(), "b.rs".into(), ".expect(".into())]
    );
    assert_eq!(result.stale.len(), 1);
    assert_eq!(result.stale[0].finding.file, "gone.rs");
    assert!(!result.passed());

    // Exact coverage passes.
    let full = Baseline {
        entries: scan
            .iter()
            .map(|f| Entry {
                finding: f.clone(),
                reason: "ok".into(),
            })
            .collect(),
    };
    assert!(gate(&scan, &full).passed());

    // Duplicate findings need duplicate entries (multiset, not set).
    let twice = vec![scan[0].clone(), scan[0].clone()];
    let once = Baseline {
        entries: vec![Entry {
            finding: scan[0].clone(),
            reason: "ok".into(),
        }],
    };
    let result = gate(&twice, &once);
    assert_eq!(result.grandfathered, 1);
    assert_eq!(result.new.len(), 1);
}

#[test]
fn rebuild_carries_reasons_and_defaults_new_ones() {
    let scan = vec![
        finding("R1", "a.rs", 12, ".unwrap("),
        finding("R2", "c.rs", 3, "HashMap"),
    ];
    let prior = Baseline {
        entries: vec![Entry {
            finding: finding("R1", "a.rs", 10, ".unwrap("),
            reason: "hand-written justification".into(),
        }],
    };
    let fresh = rebuild(&scan, &prior);
    assert_eq!(fresh.entries.len(), 2);
    let r1 = fresh
        .entries
        .iter()
        .find(|e| e.finding.rule == "R1")
        .unwrap();
    assert_eq!(r1.reason, "hand-written justification");
    assert_eq!(r1.finding.line, 12, "the line number refreshes");
    let r2 = fresh
        .entries
        .iter()
        .find(|e| e.finding.rule == "R2")
        .unwrap();
    assert!(
        r2.reason.contains("grandfathered"),
        "default reason: {}",
        r2.reason
    );
}

#[test]
fn baseline_json_roundtrips_canonically() {
    let base = Baseline {
        entries: vec![Entry {
            finding: Finding {
                rule: "R1".into(),
                file: "crates/x/src/lib.rs".into(),
                line: 7,
                token: ".expect(".into(),
                context: "quoted \"context\" with a\ttab and \\ backslash".into(),
                note: "why".into(),
            },
            reason: "because".into(),
        }],
    };
    let json = to_json(&base);
    let parsed = from_json(&json).expect("canonical output parses");
    assert_eq!(parsed.entries.len(), 1);
    assert_eq!(parsed.entries[0], base.entries[0]);
    // Serializing the parse is byte-identical: the writer is canonical.
    assert_eq!(to_json(&parsed), json);
    // An empty baseline also roundtrips.
    let empty = to_json(&Baseline::default());
    assert_eq!(from_json(&empty).expect("empty parses").entries.len(), 0);
}

// ---------------------------------------------------------------------------
// Self-check: the committed baseline matches a fresh scan of this very
// workspace, byte for byte.
// ---------------------------------------------------------------------------

#[test]
fn committed_baseline_matches_fresh_scan_bit_for_bit() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/dc-lint")
        .to_path_buf();
    let findings = dc_lint::scan_workspace(&root).expect("workspace scans");
    let committed = std::fs::read_to_string(root.join(dc_lint::BASELINE_FILE))
        .expect("LINT_BASELINE.json is committed at the workspace root");
    let prior = from_json(&committed).expect("committed baseline parses");

    // The gate holds: no new findings, no stale entries.
    let result = gate(&findings, &prior);
    assert!(
        result.passed(),
        "gate must pass on a clean tree: {} new, {} stale\nnew: {:#?}\nstale: {:#?}",
        result.new.len(),
        result.stale.len(),
        result.new,
        result.stale.iter().map(|e| &e.finding).collect::<Vec<_>>(),
    );

    // Regenerating the baseline reproduces the committed bytes exactly —
    // the scanner, the sort, and the writer are all deterministic.
    let rebuilt = to_json(&rebuild(&findings, &prior));
    assert_eq!(
        rebuilt, committed,
        "LINT_BASELINE.json is stale: run `cargo run -p dc-lint -- --write-baseline`"
    );
}
