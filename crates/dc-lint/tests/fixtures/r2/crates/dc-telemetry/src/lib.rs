// Fixture: the telemetry crate is the one allowed clock authority.

pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
