// Fixture: rule R2 positives and negatives (determinism).

use std::collections::HashMap;
use std::collections::HashSet;

pub fn clocks() {
    let _a = std::time::Instant::now();
    let _b = std::time::SystemTime::now();
}

pub fn channels_and_sleep() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn negatives() {
    // "HashMap" in a string and HashSet in a comment must not fire.
    let _ = "HashMap in a literal";
    // dc-lint: allow(R2) reason="fixture: allow-tagged hash container"
    let _tagged: HashMap<u32, u32> = HashMap::new();
    let _fine: std::collections::BTreeMap<u32, u32> = std::collections::BTreeMap::new();
}

pub fn tests_are_not_exempt_for_r2() {
    // R2 scans test code too: a HashSet in tests still breaks artifact
    // determinism. (The use statements above already fire once each.)
    let _s: HashSet<u32> = HashSet::new();
}
