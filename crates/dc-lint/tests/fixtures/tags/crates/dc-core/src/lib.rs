// Fixture: the lint's own allow-tag hygiene (rule TAG).

pub fn tags(x: Option<u32>) -> u32 {
    // dc-lint: allow(R1)
    let reasonless = x.unwrap(); // tag has no reason: R1 still fires + TAG fires

    // dc-lint: this is not a well-formed tag
    let malformed = x.unwrap(); // R1 fires + TAG fires

    // dc-lint: allow(R1) reason=""
    let empty_reason = x.unwrap(); // empty reason: R1 still fires + TAG fires

    // A doc-comment or string mention of the syntax is not a tag:
    let quoted = "// dc-lint: allow(R1) reason=\"quoted, not a tag\"";
    let _ = quoted;

    reasonless + malformed + empty_reason
}

/// Doc comments mentioning dc-lint: allow(R1) reason="prose" are not tags.
pub fn doc_mention(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
