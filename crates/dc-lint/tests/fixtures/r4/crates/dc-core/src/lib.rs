// Fixture: rule R4 — metric-name literals at instrumentation sites.

pub fn positives(reg: &Registry) {
    reg.add("Bad.Metric", 1); // not lowercase
    reg.counter("nodots"); // no dot
    reg.add("oops.time_ns", 1); // _ns suffix on a non-timing method
    reg.gauge("not.in.catalog", 1.0); // missing catalog row
    let _span = Span::start("Nope.Upper"); // path-call form checked too
}

pub fn negatives(reg: &Registry) {
    reg.add("good.metric", 1);
    reg.record_ns("timer.span", 5);
    reg.record_ns("bench.anything.custom", 7); // wildcard prefix row
    let span = Span::start("timer.span");
    span.finish();
    let name = "Raw.Strings.Unchecked";
    reg.add_dynamic(name, 1); // non-literal name: out of R4 scope
    // dc-lint: allow(R4) reason="fixture: allow-tagged bad name"
    reg.add("Tagged.Bad", 1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_names_are_exempt() {
        let reg = Registry;
        reg.add("t.scratch_name", 1);
    }
}
