// Fixture: dc-eval is not a serving-path crate, so R1 does not apply.

pub fn non_serving_crates_may_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}
