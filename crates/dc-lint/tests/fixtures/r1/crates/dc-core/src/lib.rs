// Fixture: rule R1 positives and negatives in a serving-path crate.
// This file is scan input for dc-lint's tests, never compiled.

pub fn positives(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("fixture");
    if a == 0 {
        panic!("fixture");
    }
    if b == 0 {
        unreachable!();
    }
    todo!()
}

pub fn unimplemented_macro() {
    unimplemented!("fixture");
}

pub fn negatives(x: Option<u32>) -> u32 {
    // A mention of unwrap() or panic!() in a comment must not fire.
    let s = "strings saying .unwrap() or panic!(now) must not fire";
    let _ = s;
    // Identifiers that merely contain the words must not fire.
    let y = x.unwrap_or_default();
    let z = x.unwrap_or_else(|| y);
    // dc-lint: allow(R1) reason="fixture: provably unreachable because the caller checked is_some"
    let tagged = x.expect("allow-tagged");
    // Same-line tag form:
    let same_line = x.expect("same line"); // dc-lint: allow(R1) reason="fixture: same-line tag"
    y + z + tagged + same_line
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let r: Result<u32, ()> = Ok(2);
        assert_eq!(r.expect("tests are exempt"), 2);
        if false {
            panic!("tests are exempt");
        }
    }
}

pub fn after_test_mod(x: Option<u32>) -> u32 {
    // Code after the #[cfg(test)] region is serving code again.
    x.unwrap()
}
