// Fixture: the masking pass — every banned token below sits in a comment
// or literal, so a correct scanner reports ZERO findings for this file.

// line comment: x.unwrap() panic!("no") HashMap Instant::now sync_all(
/* block comment: .expect("no") unreachable!() thread::sleep */
/* nested /* block .unwrap() */ still comment panic!("no") */

pub fn literals() -> usize {
    let plain = "x.unwrap() and panic!(\"no\") and HashMap::new()";
    let raw = r"no escapes: .expect(no) SystemTime::now()";
    let hashed = r#"raw with "quotes": .unwrap() sync_all("#;
    let byte = b"bytes: panic!(no) mpsc";
    let byte_raw = br#"byte raw: thread::sleep(now)"#;
    let ch = '"'; // a quote char must not open a string
    let esc = '\''; // an escaped-quote char literal
    let newline = '\n';
    // Lifetimes must not be mistaken for char literals:
    fn lifetime<'a>(s: &'a str) -> &'a str {
        s
    }
    let _ = lifetime("ok");
    // A raw identifier is code, not a raw string:
    let r#fn = 1usize;
    plain.len() + raw.len() + hashed.len() + byte.len() + byte_raw.len()
        + (ch as usize) + (esc as usize) + (newline as usize) + r#fn
}
