// Fixture: rule R3 — syncs allowed only inside the counted wrapper.

use std::fs::File;
use std::io;

pub fn sync_file(file: &File) -> io::Result<()> {
    // Inside the wrapper: allowed.
    file.sync_all()
}

pub fn rogue_sync(file: &File) -> io::Result<()> {
    // Outside the wrapper, same file: fires.
    file.sync_all()
}

pub fn rogue_sync_data(file: &File) -> io::Result<()> {
    file.sync_data()
}
