// Fixture: a sync in any other crate fires even in a fn named sync_file
// (the wrapper exemption is pinned to dc-storage's lib.rs).

pub fn sync_file(file: &std::fs::File) -> std::io::Result<()> {
    file.sync_all()
}
