//! The ratcheted baseline: `LINT_BASELINE.json` at the workspace root.
//!
//! The baseline is the set of grandfathered findings, each carrying a
//! human-written reason. The gate compares a fresh scan against it:
//!
//! * a finding not in the baseline is **new** → fail (fix it or tag it);
//! * a baseline entry not in the scan is **stale** → fail (regenerate with
//!   `--write-baseline` so the count ratchets *down* and stays honest);
//! * the baseline is never grown by hand — `--write-baseline` rewrites it
//!   from the current scan, carrying reasons over from the old file.
//!
//! Matching ignores line numbers (a finding keys on rule + file + token +
//! context + note), so unrelated edits above a grandfathered site don't
//! churn the gate — only touching the offending line itself does, which is
//! exactly when the grandfather clause should be re-examined.
//!
//! JSON is written and read by hand (std only, same offline constraint as
//! the scanner). The writer is canonical — sorted entries, fixed field
//! order, two-space indent, trailing newline — so the self-check test can
//! demand a byte-for-byte match and CI can diff two runs.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One grandfathered finding plus its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub finding: Finding,
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

/// The identity of a finding for baseline matching: everything except the
/// line number.
pub fn key(f: &Finding) -> (String, String, String, String, String) {
    (
        f.rule.clone(),
        f.file.clone(),
        f.token.clone(),
        f.context.clone(),
        f.note.clone(),
    )
}

/// The result of diffing a fresh scan against the baseline.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Findings with no matching baseline entry.
    pub new: Vec<Finding>,
    /// Baseline entries with no matching finding.
    pub stale: Vec<Entry>,
    /// Findings covered by the baseline.
    pub grandfathered: usize,
}

impl GateResult {
    pub fn passed(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Multiset-diff `findings` against `baseline`.
pub fn gate(findings: &[Finding], baseline: &Baseline) -> GateResult {
    let mut remaining: BTreeMap<(String, String, String, String, String), Vec<Entry>> =
        BTreeMap::new();
    for entry in &baseline.entries {
        remaining
            .entry(key(&entry.finding))
            .or_default()
            .push(entry.clone());
    }
    let mut result = GateResult::default();
    for finding in findings {
        match remaining.get_mut(&key(finding)) {
            Some(bucket) if !bucket.is_empty() => {
                bucket.pop();
                result.grandfathered += 1;
            }
            _ => result.new.push(finding.clone()),
        }
    }
    result.stale = remaining.into_values().flatten().collect();
    result.stale.sort_by_key(|e| key(&e.finding));
    result
}

/// Build a fresh baseline from `findings`, carrying each reason over from
/// `prior` where the finding still matches, and falling back to a
/// rule-specific default reason otherwise.
pub fn rebuild(findings: &[Finding], prior: &Baseline) -> Baseline {
    let mut reasons: BTreeMap<(String, String, String, String, String), Vec<String>> =
        BTreeMap::new();
    for entry in &prior.entries {
        reasons
            .entry(key(&entry.finding))
            .or_default()
            .push(entry.reason.clone());
    }
    let mut entries: Vec<Entry> = findings
        .iter()
        .map(|f| {
            let reason = reasons
                .get_mut(&key(f))
                .and_then(|bucket| bucket.pop())
                .unwrap_or_else(|| default_reason(&f.rule));
            Entry {
                finding: f.clone(),
                reason,
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        (
            &a.finding.rule,
            &a.finding.file,
            a.finding.line,
            &a.finding.token,
        )
            .cmp(&(
                &b.finding.rule,
                &b.finding.file,
                b.finding.line,
                &b.finding.token,
            ))
    });
    Baseline { entries }
}

fn default_reason(rule: &str) -> String {
    match rule {
        "R1" => {
            "grandfathered at dc-lint introduction: pre-existing panic site on a serving-path \
             crate; migrate to a typed error before touching this code"
        }
        "R2" => {
            "grandfathered at dc-lint introduction: pre-existing nondeterminism; migrate to the \
             BTree/clock/channel equivalent before touching this code"
        }
        "R3" => "grandfathered at dc-lint introduction: route through dc_storage::sync_file",
        "R4" => "grandfathered at dc-lint introduction: rename or add a catalog row",
        _ => "grandfathered at dc-lint introduction",
    }
    .to_string()
}

// ---------------------------------------------------------------------------
// Canonical writer.
// ---------------------------------------------------------------------------

/// Serialize the baseline in its canonical byte form.
pub fn to_json(baseline: &Baseline) -> String {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in ["R1", "R2", "R3", "R4", "TAG"] {
        counts.insert(rule, 0);
    }
    for entry in &baseline.entries {
        *counts.entry(entry.finding.rule.as_str()).or_insert(0) += 1;
    }
    let mut out = String::new();
    out.push_str("{\n  \"version\": 1,\n  \"counts\": {");
    let mut first = true;
    for (rule, n) in &counts {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(" \"{rule}\": {n}"));
    }
    out.push_str(" },\n  \"entries\": [");
    for (i, entry) in baseline.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let f = &entry.finding;
        out.push_str(&format!("      \"rule\": {},\n", quote(&f.rule)));
        out.push_str(&format!("      \"file\": {},\n", quote(&f.file)));
        out.push_str(&format!("      \"line\": {},\n", f.line));
        out.push_str(&format!("      \"token\": {},\n", quote(&f.token)));
        out.push_str(&format!("      \"context\": {},\n", quote(&f.context)));
        out.push_str(&format!("      \"note\": {},\n", quote(&f.note)));
        out.push_str(&format!("      \"reason\": {}\n", quote(&entry.reason)));
        out.push_str("    }");
    }
    if !baseline.entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal reader: just enough JSON for the baseline's own shape.
// ---------------------------------------------------------------------------

/// Parse a baseline file. Errors carry a byte offset for triage.
pub fn from_json(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    let Json::Object(top) = value else {
        return Err("baseline root must be an object".to_string());
    };
    let entries_json = match top.iter().find(|(k, _)| k == "entries") {
        Some((_, Json::Array(items))) => items,
        Some(_) => return Err("\"entries\" must be an array".to_string()),
        None => return Err("baseline missing \"entries\"".to_string()),
    };
    let mut entries = Vec::with_capacity(entries_json.len());
    for (i, item) in entries_json.iter().enumerate() {
        let Json::Object(fields) = item else {
            return Err(format!("entry {i} is not an object"));
        };
        let get_str = |name: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, Json::String(s))) => Ok(s.clone()),
                _ => Err(format!("entry {i} missing string field \"{name}\"")),
            }
        };
        let line = match fields.iter().find(|(k, _)| k == "line") {
            Some((_, Json::Number(n))) => *n as usize,
            _ => return Err(format!("entry {i} missing numeric field \"line\"")),
        };
        entries.push(Entry {
            finding: Finding {
                rule: get_str("rule")?,
                file: get_str("file")?,
                line,
                token: get_str("token")?,
                context: get_str("context")?,
                note: get_str("note")?,
            },
            reason: get_str("reason")?,
        });
    }
    Ok(Baseline { entries })
}

enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(#[allow(dead_code)] bool),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        let start = self.pos;
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(format!("unterminated string at offset {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at offset {}", self.pos))?;
                    let c = s.chars().next().ok_or("empty")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // {
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at offset {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            fields.push((name, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}
