//! The source model: Rust files reduced to a lintable *code view*.
//!
//! The scanner is a hand-rolled, token-level pass (no `syn` — the workspace
//! is offline, the same constraint that produced the vendored shims in
//! `vendor/`).  It does not parse Rust; it classifies every **byte** of a
//! source file as code, comment, or literal, which is exactly enough to make
//! substring rules sound:
//!
//! * comments (`//…`, nested `/*…*/`, doc comments) are masked, so a rule
//!   never fires on prose that merely *mentions* `unwrap()`;
//! * string/char literals (plain, raw `r#"…"#`, byte `b"…"`, byte-char
//!   `b'x'`) are masked, so a rule never fires on `"HashMap"` the string —
//!   while the raw text is kept alongside, so rule R4 can still read the
//!   metric-name literal at a telemetry call site;
//! * lifetimes (`'a`) are distinguished from char literals by the standard
//!   two-character lookahead heuristic.
//!
//! On top of the masked view the scanner derives three structural facts the
//! rules need: the byte ranges of `#[cfg(test)]` items (rules R1/R4 skip
//! test code), the body range of a named `fn` (rule R3's counted-wrapper
//! exemption), and the per-line `dc-lint: allow(…)` suppression tags.

use std::collections::BTreeMap;
use std::path::Path;

/// One scanned source file: the raw text plus its masked code view and the
/// derived structure the rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, always `/`-separated.
    pub rel_path: String,
    /// The `crates/<name>/…` crate this file belongs to (`None` for the
    /// facade sources under the root `src/`).
    pub crate_name: Option<String>,
    /// The file's raw text.
    pub raw: String,
    /// Same length as `raw`: comment and literal bytes replaced by spaces
    /// (newlines preserved), so byte offsets and line numbers line up.
    pub scrubbed: String,
    /// Byte offset of the start of each line.
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    /// `dc-lint:` suppression tags by 1-based line number.
    allow_tags: BTreeMap<usize, Vec<AllowTag>>,
}

/// A parsed `dc-lint: allow(<rules>) reason="…"` tag.
#[derive(Debug, Clone)]
pub struct AllowTag {
    /// The rule ids the tag names, upper-cased (e.g. `["R1"]`).
    pub rules: Vec<String>,
    /// The required justification; `None` when missing or empty — such a
    /// tag suppresses nothing and is itself reported.
    pub reason: Option<String>,
    /// Whether the tag parsed at all (`dc-lint:` present but no
    /// `allow(…)` clause makes a malformed tag).
    pub well_formed: bool,
}

impl SourceFile {
    /// Scan one file's text into the lintable model.
    pub fn new(rel_path: String, raw: String) -> SourceFile {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let Scrubbed {
            text: scrubbed,
            line_comments,
        } = scrub(&raw);
        let line_starts = line_starts(&raw);
        let test_regions = test_regions(&scrubbed);
        let allow_tags = parse_allow_tags(&raw, &line_comments, &line_starts);
        SourceFile {
            rel_path,
            crate_name,
            raw,
            scrubbed,
            line_starts,
            test_regions,
            allow_tags,
        }
    }

    /// The 1-based line number containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
    }

    /// The trimmed raw text of 1-based line `line` (empty when out of
    /// range).
    pub fn line_text(&self, line: usize) -> &str {
        let start = match self.line_starts.get(line - 1) {
            Some(&s) => s,
            None => return "",
        };
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.raw.len());
        self.raw[start..end].trim_end_matches('\n').trim()
    }

    /// Whether byte `offset` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(from, to)| (from..to).contains(&offset))
    }

    /// Whether a finding of `rule` at 1-based `line` is suppressed by a
    /// well-formed, reasoned allow-tag on the same or the preceding line.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        [line, line.saturating_sub(1)]
            .iter()
            .filter_map(|l| self.allow_tags.get(l))
            .flatten()
            .any(|tag| {
                tag.well_formed && tag.reason.is_some() && tag.rules.iter().any(|r| r == rule)
            })
    }

    /// Every allow-tag in the file with its 1-based line, for reporting
    /// malformed or reasonless tags.
    pub fn tags(&self) -> impl Iterator<Item = (usize, &AllowTag)> {
        self.allow_tags
            .iter()
            .flat_map(|(&line, tags)| tags.iter().map(move |t| (line, t)))
    }

    /// The byte range of the body (brace to matching brace) of the first
    /// `fn <name>` in the file, if any.
    pub fn fn_body(&self, name: &str) -> Option<(usize, usize)> {
        let bytes = self.scrubbed.as_bytes();
        let mut from = 0;
        while let Some(pos) = find_word(bytes, name.as_bytes(), from) {
            // The identifier must be introduced by `fn`.
            let before = prev_nonspace(bytes, pos);
            let is_fn = before.is_some_and(|i| {
                i >= 1 && &bytes[i - 1..=i] == b"fn" && (i < 2 || !is_ident(bytes[i - 2]))
            });
            if is_fn {
                let mut j = pos + name.len();
                while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'{' {
                    return Some((j, match_brace(bytes, j)));
                }
                return None;
            }
            from = pos + name.len();
        }
        None
    }
}

/// Whether `b` can appear in a Rust identifier.
pub fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find the next word-bounded occurrence of `word` in `bytes` at or after
/// `from`: the bytes on either side must not be identifier characters.
pub fn find_word(bytes: &[u8], word: &[u8], from: usize) -> Option<usize> {
    let n = bytes.len();
    let w = word.len();
    if w == 0 || n < w {
        return None;
    }
    let mut i = from;
    while i + w <= n {
        if &bytes[i..i + w] == word
            && (i == 0 || !is_ident(bytes[i - 1]))
            && (i + w == n || !is_ident(bytes[i + w]))
        {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// The index of the first non-whitespace byte at or after `from`.
pub fn next_nonspace(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len()).find(|&i| !bytes[i].is_ascii_whitespace())
}

/// The index of the last non-whitespace byte strictly before `before`.
pub fn prev_nonspace(bytes: &[u8], before: usize) -> Option<usize> {
    (0..before).rev().find(|&i| !bytes[i].is_ascii_whitespace())
}

/// From an opening `{` at `open`, the index just past its matching `}`
/// (or the end of input when unbalanced — a truncated file lints as if the
/// block ran to EOF rather than panicking).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    bytes.len()
}

fn line_starts(raw: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in raw.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

// ---------------------------------------------------------------------------
// Masking: classify every byte, keep offsets stable.
// ---------------------------------------------------------------------------

/// A masked view of a source file: `text` is the same length as the input
/// with every comment and literal byte replaced by a space (newlines
/// preserved); `line_comments` records the byte range of each `//` comment
/// so the tag parser can tell a real comment from a string literal that
/// merely quotes one.
pub struct Scrubbed {
    pub text: String,
    pub line_comments: Vec<(usize, usize)>,
}

/// Mask `raw` into a same-length string where substring searches only ever
/// hit real code.
pub fn scrub(raw: &str) -> Scrubbed {
    let bytes = raw.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    let mut line_comments = Vec::new();
    let mut i = 0;
    while i < n {
        let b = bytes[i];
        if b == b'/' && i + 1 < n && bytes[i + 1] == b'/' {
            let end = bytes[i..]
                .iter()
                .position(|&c| c == b'\n')
                .map_or(n, |p| i + p);
            line_comments.push((i, end));
            mask(&mut out, bytes, i, end);
            i = end;
        } else if b == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            let end = block_comment_end(bytes, i);
            mask(&mut out, bytes, i, end);
            i = end;
        } else if (b == b'r' || b == b'b') && (i == 0 || !is_ident(bytes[i - 1])) {
            match prefixed_literal_end(bytes, i) {
                Some(end) => {
                    mask(&mut out, bytes, i, end);
                    i = end;
                }
                None => i += 1,
            }
        } else if b == b'"' {
            let end = string_end(bytes, i);
            mask(&mut out, bytes, i, end);
            i = end;
        } else if b == b'\'' {
            match char_literal_end(bytes, i) {
                Some(end) => {
                    mask(&mut out, bytes, i, end);
                    i = end;
                }
                // A lifetime (or stray quote): the quote itself is masked so
                // `'a` never word-joins, the identifier stays code.
                None => {
                    out[i] = b' ';
                    i += 1;
                }
            }
        } else {
            i += 1;
        }
    }
    // Masking only ever rewrites ASCII bytes to ASCII spaces, so the result
    // is valid UTF-8 by construction.
    Scrubbed {
        text: String::from_utf8(out).unwrap_or_default(),
        line_comments,
    }
}

fn mask(out: &mut [u8], bytes: &[u8], from: usize, to: usize) {
    for i in from..to {
        out[i] = if bytes[i] == b'\n' { b'\n' } else { b' ' };
    }
}

fn block_comment_end(bytes: &[u8], start: usize) -> usize {
    let n = bytes.len();
    let mut depth = 1usize;
    let mut i = start + 2;
    while i < n && depth > 0 {
        if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
            depth -= 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    i
}

/// From an opening `"` at `open`, the index just past the closing quote.
fn string_end(bytes: &[u8], open: usize) -> usize {
    let n = bytes.len();
    let mut i = open + 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// At a word-boundary `r`/`b`: the end of the raw/byte string or byte-char
/// literal starting here, or `None` when this is just an identifier (incl.
/// raw identifiers like `r#fn`).
fn prefixed_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let n = bytes.len();
    let mut j = start;
    let byte_prefix = bytes[j] == b'b';
    if byte_prefix {
        j += 1;
        if j >= n {
            return None;
        }
    }
    if bytes[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < n && bytes[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || bytes[j] != b'"' {
            return None; // raw identifier or plain `r`/`br` identifier
        }
        j += 1;
        while j < n {
            if bytes[j] == b'"' {
                let mut k = j + 1;
                let mut h = 0usize;
                while k < n && h < hashes && bytes[k] == b'#' {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return Some(k);
                }
            }
            j += 1;
        }
        return Some(n);
    }
    if byte_prefix && bytes[j] == b'"' {
        return Some(string_end(bytes, j));
    }
    if byte_prefix && bytes[j] == b'\'' {
        return char_literal_end(bytes, j).or(Some(j + 1));
    }
    None
}

/// From a `'` at `open`: the end of the char literal starting here, or
/// `None` when the quote introduces a lifetime.
fn char_literal_end(bytes: &[u8], open: usize) -> Option<usize> {
    let n = bytes.len();
    if open + 1 >= n {
        return None;
    }
    if bytes[open + 1] == b'\\' {
        let mut i = open + 2;
        while i < n {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => return Some(i + 1),
                _ => i += 1,
            }
        }
        return Some(n);
    }
    // One (possibly multi-byte) character followed by a closing quote is a
    // char literal; anything else (`'a`, `'static: `) is a lifetime.
    let c_len = utf8_len(bytes[open + 1]);
    let close = open + 1 + c_len;
    if bytes[open + 1] != b'\'' && close < n && bytes[close] == b'\'' {
        return Some(close + 1);
    }
    None
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

// ---------------------------------------------------------------------------
// Structure: #[cfg(test)] regions and allow-tags.
// ---------------------------------------------------------------------------

/// Byte ranges of `#[cfg(test)]` items in the scrubbed view: from the
/// attribute to the matching close brace of the item's block (or to the
/// terminating `;` for block-less items).
fn test_regions(scrubbed: &str) -> Vec<(usize, usize)> {
    const ATTR: &str = "#[cfg(test)]";
    let bytes = scrubbed.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(rel) = scrubbed[from..].find(ATTR) {
        let pos = from + rel;
        let mut j = pos + ATTR.len();
        while j < bytes.len() && bytes[j] != b'{' && bytes[j] != b';' {
            j += 1;
        }
        let end = if j < bytes.len() && bytes[j] == b'{' {
            match_brace(bytes, j)
        } else {
            (j + 1).min(bytes.len())
        };
        regions.push((pos, end));
        from = end.max(pos + ATTR.len());
    }
    regions
}

/// Tags live only in plain `//` line comments (not `///`/`//!` docs, not
/// string literals that quote the syntax), with the marker anchored at the
/// start of the comment text: `// dc-lint: allow(R#) reason="…"`.
fn parse_allow_tags(
    raw: &str,
    line_comments: &[(usize, usize)],
    line_starts: &[usize],
) -> BTreeMap<usize, Vec<AllowTag>> {
    const MARKER: &str = "dc-lint:";
    let mut tags: BTreeMap<usize, Vec<AllowTag>> = BTreeMap::new();
    for &(start, end) in line_comments {
        let text = &raw[start + 2..end];
        if text.starts_with('/') || text.starts_with('!') {
            continue; // doc comment: prose, not a tag
        }
        let Some(rest) = text.trim_start().strip_prefix(MARKER) else {
            continue;
        };
        let line = match line_starts.binary_search(&start) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        };
        tags.entry(line).or_default().push(parse_tag(rest));
    }
    tags
}

fn parse_tag(rest: &str) -> AllowTag {
    let rest = rest.trim_start();
    let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split_once(')').map(|(inner, _)| inner))
    else {
        return AllowTag {
            rules: Vec::new(),
            reason: None,
            well_formed: false,
        };
    };
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest
        .split_once("reason=\"")
        .and_then(|(_, tail)| tail.split_once('"'))
        .map(|(reason, _)| reason.trim().to_string())
        .filter(|r| !r.is_empty());
    let well_formed = !rules.is_empty();
    AllowTag {
        rules,
        reason,
        well_formed,
    }
}

// ---------------------------------------------------------------------------
// Walking.
// ---------------------------------------------------------------------------

/// Collect every `.rs` file under `root/crates/*/src` and `root/src`,
/// sorted by relative path so every downstream artifact is deterministic.
pub fn walk_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<std::path::PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut paths)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut paths)?;
    }

    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let raw = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(rel, raw));
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
