//! The rule set: R1 panic-freedom, R2 determinism, R3 fsync discipline,
//! R4 telemetry naming, plus TAG (the lint's own allow-tag hygiene).
//!
//! Every rule works on a [`SourceFile`]'s scrubbed view (comments and
//! literals masked), so matches are real code tokens. R4 additionally reads
//! metric-name literals back out of the raw text at call sites it located in
//! the scrubbed view.

use crate::scan::{find_word, next_nonspace, prev_nonspace, SourceFile};
use std::collections::BTreeSet;

/// One lint finding, locatable and stable enough to diff against a
/// baseline across unrelated edits (the gate keys on everything except
/// `line`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Rule id: `R1`..`R4` or `TAG`.
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending token (e.g. `.expect(`, `HashMap`, `sync_all`).
    pub token: String,
    /// The trimmed raw source line, for human triage and stable matching.
    pub context: String,
    /// Rule-specific detail (e.g. which catalog check a metric name failed).
    pub note: String,
}

impl Finding {
    fn new(rule: &str, sf: &SourceFile, offset: usize, token: &str, note: &str) -> Finding {
        let line = sf.line_of(offset);
        Finding {
            rule: rule.to_string(),
            file: sf.rel_path.clone(),
            line,
            token: token.to_string(),
            context: sf.line_text(line).to_string(),
            note: note.to_string(),
        }
    }
}

/// Crates whose non-test code must be panic-free (rule R1): these are the
/// serving path — a panic here takes down a query, not a test.
const SERVING_CRATES: &[&str] = &["dc-core", "dc-storage", "dc-similarity"];

/// Run every rule over every file; findings come back sorted by
/// (file, line, rule, token).
pub fn run_all(files: &[SourceFile], catalog: &Catalog) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in files {
        rule_r1(sf, &mut findings);
        rule_r2(sf, &mut findings);
        rule_r3(sf, &mut findings);
        rule_r4(sf, catalog, &mut findings);
        rule_tag(sf, &mut findings);
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.token).cmp(&(&b.file, b.line, &b.rule, &b.token))
    });
    findings
}

/// Push a finding unless an allow-tag on the same or preceding line
/// suppresses it.
fn push(findings: &mut Vec<Finding>, sf: &SourceFile, f: Finding) {
    if !sf.allowed(&f.rule, f.line) {
        findings.push(f);
    }
}

// ---------------------------------------------------------------------------
// R1: panic-freedom on serving paths.
// ---------------------------------------------------------------------------

fn rule_r1(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let serving = sf
        .crate_name
        .as_deref()
        .is_some_and(|c| SERVING_CRATES.contains(&c));
    if !serving {
        return;
    }
    let bytes = sf.scrubbed.as_bytes();

    // `.unwrap(` / `.expect(`: a method call, so the identifier must be
    // preceded by `.` and followed by `(` (whitespace tolerated).
    for method in ["unwrap", "expect"] {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, method.as_bytes(), from) {
            from = pos + method.len();
            if sf.in_test_code(pos) {
                continue;
            }
            let dotted = prev_nonspace(bytes, pos).is_some_and(|i| bytes[i] == b'.');
            let called = next_nonspace(bytes, from).is_some_and(|i| bytes[i] == b'(');
            if dotted && called {
                let f = Finding::new(
                    "R1",
                    sf,
                    pos,
                    &format!(".{method}("),
                    "panic on serving path: convert to a typed error or tag with a reason",
                );
                push(findings, sf, f);
            }
        }
    }

    // `panic!` / `unreachable!` / `todo!` / `unimplemented!`: macro
    // invocations, identifier followed by `!`.
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, mac.as_bytes(), from) {
            from = pos + mac.len();
            if sf.in_test_code(pos) {
                continue;
            }
            if bytes.get(from) == Some(&b'!') {
                let f = Finding::new(
                    "R1",
                    sf,
                    pos,
                    &format!("{mac}!"),
                    "panic on serving path: convert to a typed error or tag with a reason",
                );
                push(findings, sf, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R2: determinism.
// ---------------------------------------------------------------------------

fn rule_r2(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = sf.scrubbed.as_bytes();
    let telemetry = sf.crate_name.as_deref() == Some("dc-telemetry");

    // Hash containers iterate in address order; the workspace is BTree-only
    // so every artifact (snapshots, reports, baselines) is byte-stable.
    for container in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, container.as_bytes(), from) {
            from = pos + container.len();
            let f = Finding::new(
                "R2",
                sf,
                pos,
                container,
                "nondeterministic iteration order: use the BTree equivalent",
            );
            push(findings, sf, f);
        }
    }

    // Wall-clock reads outside the telemetry crate make outputs
    // time-dependent; route through dc_telemetry::clock / Span instead.
    for path in [&["Instant", "now"][..], &["SystemTime", "now"][..]] {
        if telemetry {
            break;
        }
        let mut from = 0;
        while let Some(pos) = find_path(bytes, path, from) {
            from = pos + path[0].len();
            let token = path.join("::");
            let f = Finding::new(
                "R2",
                sf,
                pos,
                &token,
                "raw clock read outside dc-telemetry: use dc_telemetry::clock or a Span",
            );
            push(findings, sf, f);
        }
    }
    if !telemetry {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, b"SystemTime", from) {
            from = pos + "SystemTime".len();
            // `SystemTime::now` already reported above; bare mentions of the
            // type are still a smell worth flagging once.
            if find_path(bytes, &["SystemTime", "now"], pos) == Some(pos) {
                continue;
            }
            let f = Finding::new(
                "R2",
                sf,
                pos,
                "SystemTime",
                "wall-clock type outside dc-telemetry",
            );
            push(findings, sf, f);
        }
    }

    // std::sync::mpsc channels have no deterministic recv order across
    // senders; the workspace uses its own bounded channel.
    let mut from = 0;
    while let Some(pos) = find_word(bytes, b"mpsc", from) {
        from = pos + "mpsc".len();
        let f = Finding::new(
            "R2",
            sf,
            pos,
            "mpsc",
            "std mpsc channel: use the workspace bounded channel (deterministic capacity/close semantics)",
        );
        push(findings, sf, f);
    }

    // Sleeping encodes a timing assumption; wait on state instead.
    let mut from = 0;
    while let Some(pos) = find_path(bytes, &["thread", "sleep"], from) {
        from = pos + "thread".len();
        let f = Finding::new(
            "R2",
            sf,
            pos,
            "thread::sleep",
            "timing-based synchronization: wait on a Condvar/channel state instead",
        );
        push(findings, sf, f);
    }
}

/// Find `segments[0] :: segments[1] :: …` allowing whitespace around the
/// separators, returning the offset of the first segment.
fn find_path(bytes: &[u8], segments: &[&str], from: usize) -> Option<usize> {
    let first = segments[0].as_bytes();
    let mut start = from;
    'outer: while let Some(pos) = find_word(bytes, first, start) {
        start = pos + first.len();
        let mut cursor = pos + first.len();
        for seg in &segments[1..] {
            let Some(c1) = next_nonspace(bytes, cursor) else {
                continue 'outer;
            };
            if bytes.get(c1) != Some(&b':') || bytes.get(c1 + 1) != Some(&b':') {
                continue 'outer;
            }
            let Some(s) = next_nonspace(bytes, c1 + 2) else {
                continue 'outer;
            };
            if find_word(bytes, seg.as_bytes(), s) != Some(s) {
                continue 'outer;
            }
            cursor = s + seg.len();
        }
        return Some(pos);
    }
    None
}

// ---------------------------------------------------------------------------
// R3: fsync discipline.
// ---------------------------------------------------------------------------

/// The one counted wrapper allowed to issue syncs: it bumps
/// `storage.fsync_count`, which group-commit schedule tests pin.
const SYNC_WRAPPER_FILE: &str = "crates/dc-storage/src/lib.rs";
const SYNC_WRAPPER_FN: &str = "sync_file";

fn rule_r3(sf: &SourceFile, findings: &mut Vec<Finding>) {
    let bytes = sf.scrubbed.as_bytes();
    let wrapper_body = if sf.rel_path == SYNC_WRAPPER_FILE {
        sf.fn_body(SYNC_WRAPPER_FN)
    } else {
        None
    };
    for call in ["sync_all", "sync_data"] {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, call.as_bytes(), from) {
            from = pos + call.len();
            // Require a call (whitespace before the paren tolerated).
            let Some(i) = next_nonspace(bytes, from) else {
                continue;
            };
            if bytes[i] != b'(' {
                continue;
            }
            if wrapper_body.is_some_and(|(lo, hi)| (lo..hi).contains(&pos)) {
                continue;
            }
            let f = Finding::new(
                "R3",
                sf,
                pos,
                call,
                "sync outside the counted wrapper: route through dc_storage::sync_file so storage.fsync_count stays truthful",
            );
            push(findings, sf, f);
        }
    }
}

// ---------------------------------------------------------------------------
// R4: telemetry naming.
// ---------------------------------------------------------------------------

/// The metric-name catalog extracted from the README's
/// `### Metric catalog` table.
#[derive(Debug, Default)]
pub struct Catalog {
    /// Exact metric names (backticked first-column entries).
    pub exact: BTreeSet<String>,
    /// Wildcard prefixes from `name.*` rows.
    pub prefixes: BTreeSet<String>,
    /// Whether a catalog section was found at all.
    pub present: bool,
}

impl Catalog {
    /// Parse the catalog out of a README's text.
    pub fn from_readme(readme: &str) -> Catalog {
        let mut catalog = Catalog::default();
        let Some(section_start) = readme.find("### Metric catalog") else {
            return catalog;
        };
        catalog.present = true;
        let section = &readme[section_start..];
        // The section runs until the next heading.
        let end = section[4..]
            .find("\n#")
            .map_or(section.len(), |p| p + 4 + 1);
        for line in section[..end].lines() {
            let mut rest = line;
            while let Some(tick) = rest.find('`') {
                let after = &rest[tick + 1..];
                let Some(close) = after.find('`') else {
                    break;
                };
                let name = &after[..close];
                if let Some(prefix) = name.strip_suffix(".*") {
                    catalog.prefixes.insert(prefix.to_string());
                } else if name.contains('.') {
                    catalog.exact.insert(name.to_string());
                }
                rest = &after[close + 1..];
            }
        }
        catalog
    }

    fn contains(&self, name: &str) -> bool {
        if self.exact.contains(name) {
            return true;
        }
        self.prefixes.iter().any(|p| {
            name.strip_prefix(p.as_str())
                .is_some_and(|r| r.starts_with('.'))
                || name == p
        })
    }
}

/// Instrumentation methods whose first argument is a metric name, and
/// whether the value they record is a nanosecond timing.
const INSTRUMENTATION: &[(&str, bool)] = &[
    ("add", false),
    ("add_always", false),
    ("counter", false),
    ("gauge", false),
    ("record_ns", true),
    ("span", true),
];

fn rule_r4(sf: &SourceFile, catalog: &Catalog, findings: &mut Vec<Finding>) {
    let bytes = sf.scrubbed.as_bytes();
    let raw = sf.raw.as_bytes();
    for &(method, is_timing) in INSTRUMENTATION {
        let mut from = 0;
        while let Some(pos) = find_word(bytes, method.as_bytes(), from) {
            from = pos + method.len();
            if sf.in_test_code(pos) {
                continue;
            }
            // Must look like a method call: `.method("…"` — receiver dot
            // before, open paren then a string literal after.
            if prev_nonspace(bytes, pos).is_none_or(|i| bytes[i] != b'.') {
                continue;
            }
            let Some(name) = name_literal(bytes, raw, from) else {
                continue;
            };
            if let Some(note) = check_metric_name(&name, method, is_timing, catalog) {
                let f = Finding::new("R4", sf, pos, &name, &note);
                push(findings, sf, f);
            }
        }
    }

    // `Span::start("…")` is the one path-call instrumentation entry point
    // (used when a span must outlive the statement that starts it).
    let mut from = 0;
    while let Some(pos) = find_word(bytes, b"start", from) {
        from = pos + "start".len();
        if sf.in_test_code(pos) {
            continue;
        }
        let Some(colon) = prev_nonspace(bytes, pos) else {
            continue;
        };
        if colon < 1 || bytes[colon] != b':' || bytes[colon - 1] != b':' {
            continue;
        }
        let Some(receiver_end) = prev_nonspace(bytes, colon - 1) else {
            continue;
        };
        let is_span = receiver_end >= 3
            && &bytes[receiver_end - 3..=receiver_end] == b"Span"
            && (receiver_end < 4 || !crate::scan::is_ident(bytes[receiver_end - 4]));
        if !is_span {
            continue;
        }
        let Some(name) = name_literal(bytes, raw, from) else {
            continue;
        };
        if let Some(note) = check_metric_name(&name, "Span::start", true, catalog) {
            let f = Finding::new("R4", sf, pos, &name, &note);
            push(findings, sf, f);
        }
    }
}

/// The metric-name string literal opening an instrumentation call: given
/// the offset just past the method identifier, require `("…"` (whitespace
/// tolerated) and return the literal's contents.  The literal is masked in
/// the scrubbed view, so its bytes are read from the raw text.
fn name_literal(bytes: &[u8], raw: &[u8], after_ident: usize) -> Option<String> {
    let paren = next_nonspace(bytes, after_ident)?;
    if bytes[paren] != b'(' {
        return None;
    }
    let q = next_nonspace(raw, paren + 1)?;
    if raw[q] != b'"' {
        return None; // name passed as a variable/const: out of R4 scope
    }
    let close = raw[q + 1..].iter().position(|&b| b == b'"')?;
    std::str::from_utf8(&raw[q + 1..q + 1 + close])
        .ok()
        .map(str::to_string)
}

fn check_metric_name(
    name: &str,
    method: &str,
    is_timing: bool,
    catalog: &Catalog,
) -> Option<String> {
    let dotted_lowercase = name.contains('.')
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        });
    if !dotted_lowercase {
        return Some(format!(
            "metric name {name:?} is not dotted-lowercase (segments of [a-z0-9_] joined by '.')"
        ));
    }
    if name.ends_with("_ns") && !is_timing {
        return Some(format!(
            "metric name {name:?} carries the _ns timing suffix but {method}() does not record nanoseconds"
        ));
    }
    if !catalog.present {
        return Some(
            "README metric catalog section not found: R4 cannot cross-check names".to_string(),
        );
    }
    if !catalog.contains(name) {
        return Some(format!(
            "metric name {name:?} is not in the README metric catalog: add a row or fix the name"
        ));
    }
    None
}

// ---------------------------------------------------------------------------
// TAG: the lint's own hygiene — every tag well-formed and reasoned.
// ---------------------------------------------------------------------------

fn rule_tag(sf: &SourceFile, findings: &mut Vec<Finding>) {
    for (line, tag) in sf.tags() {
        if !tag.well_formed {
            findings.push(Finding {
                rule: "TAG".to_string(),
                file: sf.rel_path.clone(),
                line,
                token: "dc-lint:".to_string(),
                context: sf.line_text(line).to_string(),
                note: "malformed tag: expected `dc-lint: allow(R#) reason=\"…\"`".to_string(),
            });
        } else if tag.reason.is_none() {
            findings.push(Finding {
                rule: "TAG".to_string(),
                file: sf.rel_path.clone(),
                line,
                token: format!("allow({})", tag.rules.join(",")),
                context: sf.line_text(line).to_string(),
                note: "allow-tag without a non-empty reason=\"…\": the justification is the point"
                    .to_string(),
            });
        }
    }
}
