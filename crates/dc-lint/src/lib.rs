//! `dc-lint`: the workspace invariant checker.
//!
//! Four conventions keep this codebase's correctness story honest, and all
//! four used to live only in prose. This crate turns them into a
//! token-level static-analysis pass gated by a ratcheted baseline:
//!
//! | rule | invariant |
//! |------|-----------|
//! | R1   | panic-freedom: no `unwrap`/`expect`/`panic!`/`unreachable!` in serving-path crates (`dc-core`, `dc-storage`, `dc-similarity`) outside tests |
//! | R2   | determinism: no `HashMap`/`HashSet`/`Instant::now`/`SystemTime`/`mpsc`/`thread::sleep` outside `dc-telemetry`'s clock |
//! | R3   | fsync discipline: `sync_all`/`sync_data` only inside `dc_storage::sync_file`, the counted wrapper behind `storage.fsync_count` |
//! | R4   | telemetry naming: metric-name literals are dotted-lowercase, catalogued in the README, with `_ns` reserved for nanosecond timings |
//!
//! Violations that predate the lint are grandfathered in
//! `LINT_BASELINE.json` with a reason each; the gate fails on anything new
//! and on stale entries, so the baseline can only shrink. Legitimate sites
//! carry an inline `// dc-lint: allow(R#) reason="…"` tag.
//!
//! Run it as `cargo run -p dc-lint` or `experiments lint`.

pub mod baseline;
pub mod rules;
pub mod scan;

pub use baseline::{Baseline, Entry, GateResult};
pub use rules::{Catalog, Finding};

use std::path::{Path, PathBuf};

/// File name of the committed baseline at the workspace root.
pub const BASELINE_FILE: &str = "LINT_BASELINE.json";

/// Scan the workspace at `root` and return all findings (after allow-tag
/// suppression), sorted by (file, line, rule, token).
pub fn scan_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let files = scan::walk_workspace(root)
        .map_err(|e| format!("walking {} failed: {e}", root.display()))?;
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let catalog = Catalog::from_readme(&readme);
    Ok(rules::run_all(&files, &catalog))
}

/// Load the committed baseline at `root` (an absent file is an empty
/// baseline, so a fresh checkout of a clean tree still gates correctly).
pub fn load_baseline(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    if !path.exists() {
        return Ok(Baseline::default());
    }
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading {} failed: {e}", path.display()))?;
    baseline::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

/// Scan, gate against the committed baseline, and render a human report.
/// `Ok` is the pass report; `Err` is the failure report (new findings
/// and/or stale entries), suitable for printing before a non-zero exit.
pub fn run_gate(root: &Path) -> Result<String, String> {
    let findings = scan_workspace(root)?;
    let base = load_baseline(root)?;
    let result = baseline::gate(&findings, &base);
    let report = render(&findings, &result);
    if result.passed() {
        Ok(report)
    } else {
        Err(report)
    }
}

fn render(findings: &[Finding], result: &GateResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dc-lint: {} findings ({} grandfathered, {} new, {} stale baseline entries)\n",
        findings.len(),
        result.grandfathered,
        result.new.len(),
        result.stale.len(),
    ));
    if !result.new.is_empty() {
        out.push_str("\nnew findings (fix, or tag with `// dc-lint: allow(R#) reason=\"…\"`):\n");
        for f in &result.new {
            out.push_str(&format!(
                "  [{}] {}:{} {} — {}\n      {}\n",
                f.rule, f.file, f.line, f.token, f.note, f.context
            ));
        }
    }
    if !result.stale.is_empty() {
        out.push_str(
            "\nstale baseline entries (the site is gone — run `cargo run -p dc-lint -- \
             --write-baseline` to ratchet the baseline down):\n",
        );
        for e in &result.stale {
            let f = &e.finding;
            out.push_str(&format!(
                "  [{}] {}:{} {}\n      {}\n",
                f.rule, f.file, f.line, f.token, f.context
            ));
        }
    }
    if result.passed() {
        out.push_str("gate: PASS\n");
    } else {
        out.push_str("gate: FAIL\n");
    }
    out
}

/// Find the workspace root by ascending from `start` until a directory
/// containing both `Cargo.toml` and `crates/` appears.
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
