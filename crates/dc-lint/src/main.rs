//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p dc-lint                    # gate against LINT_BASELINE.json
//! cargo run -p dc-lint -- --list          # print every finding, no gate
//! cargo run -p dc-lint -- --write-baseline  # regenerate the baseline
//! cargo run -p dc-lint -- --root DIR --baseline PATH
//! ```
//!
//! Exit code 0 on a clean gate, 1 on new findings or a stale baseline,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--list" => list = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: dc-lint [--root DIR] [--baseline PATH] [--write-baseline] [--list]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dc-lint: unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| dc_lint::discover_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dc-lint: could not find the workspace root (pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(dc_lint::BASELINE_FILE));

    if list {
        let findings = match dc_lint::scan_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dc-lint: {e}");
                return ExitCode::from(2);
            }
        };
        for f in &findings {
            println!(
                "[{}] {}:{} {} — {}",
                f.rule, f.file, f.line, f.token, f.note
            );
        }
        println!("{} findings", findings.len());
        return ExitCode::SUCCESS;
    }

    if write_baseline {
        let findings = match dc_lint::scan_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("dc-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let prior = match load_at(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dc-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let fresh = dc_lint::baseline::rebuild(&findings, &prior);
        let json = dc_lint::baseline::to_json(&fresh);
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("dc-lint: writing {} failed: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "dc-lint: wrote {} ({} entries)",
            baseline_path.display(),
            fresh.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    // The gate.
    let findings = match dc_lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let base = match load_at(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let result = dc_lint::baseline::gate(&findings, &base);
    let passed = result.passed();
    print_gate(&findings, &result);
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn load_at(path: &std::path::Path) -> Result<dc_lint::Baseline, String> {
    if !path.exists() {
        return Ok(dc_lint::Baseline::default());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {} failed: {e}", path.display()))?;
    dc_lint::baseline::from_json(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn print_gate(findings: &[dc_lint::Finding], result: &dc_lint::GateResult) {
    println!(
        "dc-lint: {} findings ({} grandfathered, {} new, {} stale baseline entries)",
        findings.len(),
        result.grandfathered,
        result.new.len(),
        result.stale.len(),
    );
    if !result.new.is_empty() {
        println!("\nnew findings (fix, or tag with `// dc-lint: allow(R#) reason=\"…\"`):");
        for f in &result.new {
            println!(
                "  [{}] {}:{} {} — {}\n      {}",
                f.rule, f.file, f.line, f.token, f.note, f.context
            );
        }
    }
    if !result.stale.is_empty() {
        println!(
            "\nstale baseline entries (the site is gone — run `cargo run -p dc-lint -- \
             --write-baseline` to ratchet the baseline down):"
        );
        for e in &result.stale {
            let f = &e.finding;
            println!(
                "  [{}] {}:{} {}\n      {}",
                f.rule, f.file, f.line, f.token, f.context
            );
        }
    }
    println!("gate: {}", if result.passed() { "PASS" } else { "FAIL" });
}
