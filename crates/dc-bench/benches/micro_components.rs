//! Micro-benchmarks of DynamicC's building blocks: similarity-graph
//! maintenance, objective delta evaluation, feature extraction, and model
//! inference.  These quantify the per-operation costs that make the
//! headline per-round latencies of Figures 5 and 7 possible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dc_datagen::{CoraLikeGenerator, FebrlLikeGenerator};
use dc_evolution::merge_features;
use dc_ml::ModelKind;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{ClusterAggregates, GraphConfig, SimilarityGraph};
use dc_types::Clustering;

fn build_graph_and_clustering() -> (SimilarityGraph, Clustering) {
    let dataset = CoraLikeGenerator {
        entities: 60,
        duplicates_per_entity: 5.0,
        ..CoraLikeGenerator::default()
    }
    .generate();
    let graph = SimilarityGraph::build(GraphConfig::textual_jaccard(0.5), &dataset);
    let clustering = dc_datagen::ground_truth(&dataset);
    (graph, clustering)
}

fn bench_graph_build(c: &mut Criterion) {
    let dataset = FebrlLikeGenerator {
        originals: 150,
        duplicates_per_original: 1.5,
        ..FebrlLikeGenerator::default()
    }
    .generate();
    c.bench_function("similarity_graph_build_febrl_375", |b| {
        b.iter(|| {
            let graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &dataset);
            black_box(graph.edge_count())
        })
    });
}

fn bench_objective_evaluation(c: &mut Criterion) {
    let (graph, clustering) = build_graph_and_clustering();
    c.bench_function("correlation_objective_full_evaluation", |b| {
        b.iter(|| black_box(CorrelationObjective.evaluate(&graph, &clustering)))
    });
    c.bench_function("dbindex_objective_full_evaluation", |b| {
        b.iter(|| black_box(DbIndexObjective.evaluate(&graph, &clustering)))
    });
    let ids = clustering.cluster_ids();
    c.bench_function("correlation_merge_delta", |b| {
        b.iter(|| black_box(CorrelationObjective.merge_delta(&graph, &clustering, ids[0], ids[1])))
    });
}

fn bench_feature_extraction(c: &mut Criterion) {
    let (graph, clustering) = build_graph_and_clustering();
    let agg = ClusterAggregates::new(&graph, &clustering);
    let ids = clustering.cluster_ids();
    c.bench_function("merge_feature_extraction_per_cluster", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &cid in &ids {
                acc += merge_features(&agg, cid)[1];
            }
            black_box(acc)
        })
    });
}

fn bench_aggregate_maintenance(c: &mut Criterion) {
    // The quantity the incremental engine trades away: one full O(E) build
    // versus one O(degree) delta update.
    let (graph, clustering) = build_graph_and_clustering();
    c.bench_function("cluster_aggregates_full_build", |b| {
        b.iter(|| {
            let agg = ClusterAggregates::new(&graph, &clustering);
            black_box(agg.cluster_count())
        })
    });

    let agg = ClusterAggregates::new(&graph, &clustering);
    let ids = clustering.cluster_ids();
    let (a, bb) = (ids[0], ids[1]);
    let merged = dc_types::ClusterId::new(u64::MAX);
    c.bench_function("cluster_aggregates_apply_merge_on_clone", |b| {
        b.iter(|| {
            let mut sim = agg.clone();
            sim.apply_merge(a, bb, merged);
            black_box(sim.cluster_count())
        })
    });
}

fn bench_model_inference(c: &mut Criterion) {
    // Fit a logistic model on synthetic cluster features and measure
    // single-prediction latency (the quantity multiplied by the number of
    // clusters per round at serving time).
    let xs: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let j = (i % 20) as f64 / 20.0;
            if i % 2 == 0 {
                vec![1.0 - j / 10.0, 0.5 + j / 2.0, 1.0 + (i % 3) as f64, 2.0]
            } else {
                vec![0.9, 0.05 + j / 10.0, 2.0, 1.0]
            }
        })
        .collect();
    let ys: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
    let mut model = ModelKind::LogisticRegression.build();
    model.fit(&xs, &ys);
    c.bench_function("logistic_regression_predict_proba", |b| {
        b.iter(|| black_box(model.predict_proba(&[0.95, 0.4, 2.0, 3.0])))
    });
    c.bench_function("logistic_regression_fit_400_examples", |b| {
        b.iter(|| {
            let mut m = ModelKind::LogisticRegression.build();
            m.fit(&xs, &ys);
            black_box(m.predict_proba(&[0.95, 0.4, 2.0, 3.0]))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_build, bench_objective_evaluation, bench_feature_extraction, bench_aggregate_maintenance, bench_model_inference
}
criterion_main!(benches);
