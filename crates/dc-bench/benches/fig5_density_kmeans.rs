//! Criterion counterpart of Figures 5(b), 5(c), and 5(e): per-round
//! re-clustering latency of the batch algorithm (DBSCAN / hill-climbing
//! k-means) versus DynamicC on the numeric dataset families.
//!
//! The benchmark measures one *representative served round*: the graph and
//! previous clustering are prepared once, then each method's `recluster`
//! call for the next snapshot is timed.  Sizes are kept small so the whole
//! suite runs in minutes; `experiments fig5b|fig5c|fig5e` prints the full
//! per-snapshot series.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dc_baselines::{Greedy, IncrementalClusterer, Naive, NaiveConfig};
use dc_bench::scenario::ClusteringTask;
use dc_bench::{DatasetFamily, Scenario, ScenarioConfig};
use dc_similarity::SimilarityGraph;

struct RoundFixture {
    scenario: Scenario,
    graph: SimilarityGraph,
    round: usize,
}

/// Prepare the scenario and advance the graph to just after the snapshot
/// that will be measured.
fn prepare(
    family: DatasetFamily,
    task: Option<ClusteringTask>,
    scale: f64,
    snapshots: usize,
) -> RoundFixture {
    let mut config = ScenarioConfig::for_family(family).scaled(scale, snapshots);
    config.task = task;
    let scenario = Scenario::prepare(config);
    let round = config.train_rounds; // first served snapshot (0-based index)
    let mut graph = SimilarityGraph::build(family.graph_config(), &scenario.workload.initial);
    for snapshot in &scenario.workload.snapshots[..=round] {
        graph.apply_batch(&snapshot.batch);
    }
    RoundFixture {
        scenario,
        graph,
        round,
    }
}

fn bench_density(c: &mut Criterion, family: DatasetFamily, tag: &str) {
    let fixture = prepare(
        family,
        Some(ClusteringTask::Density { min_pts: 3 }),
        0.35,
        4,
    );
    let previous = fixture.scenario.batch_clustering(fixture.round).clone();
    let batch_snapshot = &fixture.scenario.workload.snapshots[fixture.round];
    let batch_algo = ClusteringTask::Density { min_pts: 3 }.batch();

    let mut group = c.benchmark_group(format!("fig5_density_{tag}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("dbscan_batch_round", |b| {
        b.iter(|| {
            black_box(
                batch_algo
                    .recluster(&fixture.graph, &previous)
                    .clustering
                    .cluster_count(),
            )
        })
    });
    let mut dynamicc = fixture.scenario.fresh_trained_dynamicc();
    group.bench_function("dynamicc_round", |b| {
        b.iter(|| {
            black_box(
                dynamicc
                    .recluster(&fixture.graph, &previous, &batch_snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let fixture = prepare(DatasetFamily::Access, None, 0.35, 4);
    let previous = fixture.scenario.batch_clustering(fixture.round).clone();
    let snapshot = &fixture.scenario.workload.snapshots[fixture.round];
    let batch_algo = fixture.scenario.task.batch();
    let objective = fixture.scenario.objective().clone();

    let mut group = c.benchmark_group("fig5e_kmeans_access");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("hill_climbing_batch_round", |b| {
        b.iter(|| {
            black_box(
                batch_algo
                    .recluster(&fixture.graph, &previous)
                    .clustering
                    .cluster_count(),
            )
        })
    });
    group.bench_function("naive_round", |b| {
        b.iter(|| {
            let mut naive = Naive::new(NaiveConfig {
                join_threshold: 0.4,
            });
            black_box(
                naive
                    .recluster(&fixture.graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    group.bench_function("greedy_round", |b| {
        b.iter(|| {
            let mut greedy = Greedy::with_objective(objective.clone());
            black_box(
                greedy
                    .recluster(&fixture.graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    let mut dynamicc = fixture.scenario.fresh_trained_dynamicc();
    group.bench_function("dynamicc_round", |b| {
        b.iter(|| {
            black_box(
                dynamicc
                    .recluster(&fixture.graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_density(c, DatasetFamily::Access, "access");
    bench_density(c, DatasetFamily::Road, "road");
    bench_kmeans(c);
}

criterion_group!(fig5, benches);
criterion_main!(fig5);
