//! Criterion counterpart of Figures 6 and 7 (and Tables 2/3): per-round
//! re-clustering latency for DB-index clustering on the textual dataset
//! families, comparing the batch hill-climbing algorithm, Naive, Greedy, and
//! DynamicC on one representative served round per family.
//!
//! The expected *shape* (regardless of absolute numbers): Hill-climbing ≫
//! Greedy > DynamicC ≈ Naive, with DynamicC's advantage over Greedy growing
//! with dataset size — the `experiments fig7` subcommand prints the full
//! per-snapshot series at larger scales.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dc_baselines::{Greedy, IncrementalClusterer, Naive, NaiveConfig};
use dc_bench::{DatasetFamily, Scenario, ScenarioConfig};
use dc_similarity::SimilarityGraph;

fn bench_family(c: &mut Criterion, family: DatasetFamily, scale: f64) {
    let config = ScenarioConfig::for_family(family).scaled(scale, 5);
    let scenario = Scenario::prepare(config);
    let round = config.train_rounds;
    let mut graph = SimilarityGraph::build(family.graph_config(), &scenario.workload.initial);
    for snapshot in &scenario.workload.snapshots[..=round] {
        graph.apply_batch(&snapshot.batch);
    }
    let previous = scenario.batch_clustering(round).clone();
    let snapshot = &scenario.workload.snapshots[round];
    let batch_algo = scenario.task.batch();
    let objective = scenario.objective().clone();

    let mut group = c.benchmark_group(format!("fig7_dbindex_{}", family.name().to_lowercase()));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("hill_climbing_batch_round", |b| {
        b.iter(|| {
            black_box(
                batch_algo
                    .recluster(&graph, &previous)
                    .clustering
                    .cluster_count(),
            )
        })
    });
    group.bench_function("naive_round", |b| {
        b.iter(|| {
            let mut naive = Naive::new(NaiveConfig {
                join_threshold: 0.4,
            });
            black_box(
                naive
                    .recluster(&graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    group.bench_function("greedy_round", |b| {
        b.iter(|| {
            let mut greedy = Greedy::with_objective(objective.clone());
            black_box(
                greedy
                    .recluster(&graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    let mut dynamicc = scenario.fresh_trained_dynamicc();
    group.bench_function("dynamicc_round", |b| {
        b.iter(|| {
            black_box(
                dynamicc
                    .recluster(&graph, &previous, &snapshot.batch)
                    .cluster_count(),
            )
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_family(c, DatasetFamily::Cora, 0.25);
    bench_family(c, DatasetFamily::Music, 0.2);
    bench_family(c, DatasetFamily::Synthetic, 0.2);
}

criterion_group!(fig6_7, benches);
criterion_main!(fig6_7);
