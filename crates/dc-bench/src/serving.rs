//! The `BENCH_dynamic_serving` perf baseline: measured numbers for the
//! incremental-aggregates serving path on the canned fixture workloads.
//!
//! The experiments binary (`experiments bench-serving`) serializes
//! [`run_dynamic_serving_bench`]'s results to `BENCH_dynamic_serving.json`,
//! which starts the repository's perf trajectory: every future optimisation
//! PR re-emits the file so ops/sec, similarity comparisons, and aggregate
//! full-build counts stay measured and comparable.
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "dynamic_serving",
//!   "scenarios": [
//!     {
//!       "name": "...",            // fixture workload + objective
//!       "objective": "...",
//!       "rounds": 3,               // served rounds (after training)
//!       "operations": 120,         // workload operations served
//!       "seconds": 0.01,           // wall-clock for the served rounds
//!       "ops_per_sec": 12000.0,
//!       "mean_ms_per_round": 3.3,
//!       "comparisons": 4200,       // similarity computations during serving
//!       "merges_applied": 10,
//!       "splits_applied": 1,
//!       "objective_evaluations": 99,
//!       "aggregate_full_builds": 0,        // engine path (steady state)
//!       "slow_path_full_builds": 250,      // rebuild-per-delta reference
//!       "build_reduction_factor": 250.0    // slow / max(engine-per-round, 1-per-round)
//!     }
//!   ]
//! }
//! ```

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC, Engine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction, SlowPathObjective};
use dc_similarity::{BuildCounter, GraphConfig, SimilarityGraph};
use std::sync::Arc;

/// Measured serving numbers for one fixture scenario.
#[derive(Debug, Clone)]
pub struct ServingScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served.
    pub operations: usize,
    /// Wall-clock seconds for the served rounds (engine path).
    pub seconds: f64,
    /// Similarity computations performed while serving (graph comparisons).
    pub comparisons: u64,
    /// Merges applied across the served rounds.
    pub merges_applied: usize,
    /// Splits applied across the served rounds.
    pub splits_applied: usize,
    /// Objective delta evaluations during verification.
    pub objective_evaluations: u64,
    /// Full O(E) aggregate builds on the engine path (0 in steady state).
    pub aggregate_full_builds: u64,
    /// Full builds when the same rounds are served through the
    /// rebuild-per-delta [`SlowPathObjective`] reference.
    pub slow_path_full_builds: u64,
}

impl ServingScenarioResult {
    /// Operations per second on the engine path.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.operations as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Mean serving latency per round in milliseconds.
    pub fn mean_ms_per_round(&self) -> f64 {
        if self.rounds > 0 {
            self.seconds * 1e3 / self.rounds as f64
        } else {
            0.0
        }
    }

    /// How many times fewer full builds the incremental path performs,
    /// charging the fast path at least one build per round (the stateless
    /// `recluster` cost) so the factor stays meaningful when the engine
    /// performs zero.
    pub fn build_reduction_factor(&self) -> f64 {
        let fast = self.aggregate_full_builds.max(self.rounds as u64).max(1);
        self.slow_path_full_builds as f64 / fast as f64
    }
}

fn scenario(
    name: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> ServingScenarioResult {
    let batch = HillClimbing::with_objective(objective.clone());
    let (train, serve) = workload
        .snapshots
        .split_at(train_rounds.min(workload.snapshots.len()));

    // Train once; the slow reference twin observes the identical rounds.
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let initial = batch.cluster(&graph).clustering;
    let mut fast = DynamicC::with_objective(objective.clone());
    let report = train_on_workload(&mut fast, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);

    let mut slow = DynamicC::with_objective(Arc::new(SlowPathObjective::new(objective.clone())));
    let mut slow_graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let slow_report = train_on_workload(&mut slow, &mut slow_graph, &initial, train, &batch);
    let slow_previous = slow_report.final_clustering(&initial);

    // Engine (steady-state incremental) path, timed.
    let stats_before = *fast.stats();
    let comparisons_before = graph.comparisons();
    let mut engine = Engine::new(graph, previous, fast);
    let span = dc_telemetry::registry().span("bench.serving.serve_loop");
    let mut operations = 0usize;
    let ((), aggregate_full_builds) = BuildCounter::scope(|| {
        for snapshot in serve {
            operations += snapshot.batch.len();
            engine.apply_round(&snapshot.batch);
        }
    });
    let seconds = span.finish_ns() as f64 / 1e9;
    let stats = engine.stats();
    let merges_applied = stats.merges_applied - stats_before.merges_applied;
    let splits_applied = stats.splits_applied - stats_before.splits_applied;
    let objective_evaluations = stats.objective_evaluations - stats_before.objective_evaluations;
    let comparisons = engine.graph().comparisons() - comparisons_before;

    // Rebuild-per-delta reference: same rounds through the slow twin.
    let (_, slow_path_full_builds) = BuildCounter::scope(|| {
        let mut slow_prev = slow_previous;
        for snapshot in serve {
            slow_graph.apply_batch(&snapshot.batch);
            slow_prev = dc_baselines::IncrementalClusterer::recluster(
                &mut slow,
                &slow_graph,
                &slow_prev,
                &snapshot.batch,
            );
        }
    });

    ServingScenarioResult {
        name: name.to_string(),
        objective: objective.name().to_string(),
        rounds: serve.len(),
        operations,
        seconds,
        comparisons,
        merges_applied,
        splits_applied,
        objective_evaluations,
        aggregate_full_builds,
        slow_path_full_builds,
    }
}

/// Run the serving benchmark over the canned fixture workloads.
pub fn run_dynamic_serving_bench() -> Vec<ServingScenarioResult> {
    vec![
        scenario(
            "febrl_small_dbindex",
            &small_febrl_workload(),
            || GraphConfig::textual_febrl(0.6),
            Arc::new(DbIndexObjective),
            2,
        ),
        scenario(
            "access_small_correlation",
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
            2,
        ),
    ]
}

/// Serialize the results to the `BENCH_dynamic_serving.json` document.
pub fn serving_results_to_json(results: &[ServingScenarioResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"dynamic_serving\",\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"rounds\": {},\n",
                "      \"operations\": {},\n",
                "      \"seconds\": {:.6},\n",
                "      \"ops_per_sec\": {:.2},\n",
                "      \"mean_ms_per_round\": {:.3},\n",
                "      \"comparisons\": {},\n",
                "      \"merges_applied\": {},\n",
                "      \"splits_applied\": {},\n",
                "      \"objective_evaluations\": {},\n",
                "      \"aggregate_full_builds\": {},\n",
                "      \"slow_path_full_builds\": {},\n",
                "      \"build_reduction_factor\": {:.2}\n",
                "    }}{}\n",
            ),
            r.name,
            r.objective,
            r.rounds,
            r.operations,
            r.seconds,
            r.ops_per_sec(),
            r.mean_ms_per_round(),
            r.comparisons,
            r.merges_applied,
            r.splits_applied,
            r.objective_evaluations,
            r.aggregate_full_builds,
            r.slow_path_full_builds,
            r.build_reduction_factor(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_bench_measures_the_incremental_win() {
        let results = run_dynamic_serving_bench();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.rounds > 0, "{}: no served rounds", r.name);
            assert!(r.operations > 0, "{}: no operations", r.name);
            assert_eq!(
                r.aggregate_full_builds, 0,
                "{}: the engine path must not rebuild aggregates",
                r.name
            );
        }
        // Acceptance criterion: >= 5x fewer full builds per recluster round
        // on the DB-index fixture (the objective whose deltas used to rebuild
        // per candidate).
        let dbindex = &results[0];
        assert!(
            dbindex.build_reduction_factor() >= 5.0,
            "{}: reduction factor {:.1} < 5",
            dbindex.name,
            dbindex.build_reduction_factor()
        );
        let json = serving_results_to_json(&results);
        assert!(json.contains("\"bench\": \"dynamic_serving\""));
        assert!(json.contains("build_reduction_factor"));
    }
}
