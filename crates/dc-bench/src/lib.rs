//! # dc-bench
//!
//! Experiment harness reproducing every table and figure of the DynamicC
//! paper's evaluation (§7) on the synthetic stand-ins for its datasets.
//!
//! The library part of this crate hosts the shared *scenario* machinery —
//! which dataset family to generate, which similarity graph and objective to
//! use, how to replay a dynamic workload through every competing method and
//! time each round — and the `experiments` binary plus the Criterion benches
//! are thin drivers over it.  Default scales are laptop-sized; every scenario
//! accepts a scale factor so larger runs only need a flag (see
//! `EXPERIMENTS.md`).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod durability;
pub mod pipeline;
pub mod scenario;
pub mod serving;
pub mod shard_quality;
pub mod sharding;
pub mod telemetry;

pub use durability::{durability_results_to_json, run_durability_bench, DurabilityScenarioResult};
pub use pipeline::{
    pipeline_results_to_json, run_pipeline_bench, PipelineRunResult, PipelineScenarioResult,
};
pub use scenario::{DatasetFamily, MethodKind, RoundResult, RunSummary, Scenario, ScenarioConfig};
pub use serving::{run_dynamic_serving_bench, serving_results_to_json, ServingScenarioResult};
pub use shard_quality::{
    run_refined_throughput_bench, run_shard_quality_bench, shard_quality_results_to_json,
    RefineRoundDiag, RefinedThroughputResult, RefinedThroughputRun, ShardQualityRunResult,
    ShardQualityScenarioResult,
};
pub use sharding::{
    run_sharding_bench, sharding_results_to_json, ShardingRunResult, ShardingScenarioResult,
};
pub use telemetry::{
    run_telemetry_overhead_gate, run_telemetry_smoke, TelemetryOverheadResult, TelemetrySmokeResult,
};
