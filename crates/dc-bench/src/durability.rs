//! The `BENCH_durability` perf baseline: measured costs of the `dc-storage`
//! durability subsystem around the serving engine.
//!
//! The experiments binary (`experiments bench-durability`) serializes
//! [`run_durability_bench`]'s results to `BENCH_durability.json`.  Four
//! costs matter for durable serving, and each scenario measures all of
//! them on a fixture workload:
//!
//! * **log append** — the per-round WAL fsync tax, reported as appended
//!   operations per second;
//! * **checkpoint** — writing the atomic engine snapshot and pruning the
//!   obsolete segments;
//! * **recovery** — reopening the state directory (snapshot load + WAL tail
//!   replay), with the engine killed one round after its last checkpoint so
//!   the replayed tail is realistic rather than empty;
//! * **full replay** — what rebuilding the serving state costs *without*
//!   the subsystem: re-serve every round from round zero;
//! * **setup** — the deterministic reconstruction of the open-time inputs
//!   (graph config + trained models), which a restart pays *either way*
//!   and which is therefore reported separately and excluded from both
//!   sides of the headline ratio.
//!
//! The headline ratio `full_replay_seconds / recovery_seconds` is the
//! acceptance criterion of the durability issue: snapshot + tail replay
//! must recover at least 5x faster than full replay on the db-index
//! fixture.  `restart_speedup` additionally reports the whole-process view
//! with the shared setup added to both sides.  Each scenario also
//! cross-checks that the recovered engine's clustering and counters are
//! bit-identical to the pre-kill ones (`recovery_matches`), so the speedup
//! is never bought with wrong state.
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "durability",
//!   "scenarios": [
//!     {
//!       "name": "...",               // fixture workload + objective
//!       "objective": "...",
//!       "rounds": 3,                  // served rounds (after training)
//!       "operations": 120,            // workload operations served
//!       "wal_append_seconds": 0.001,  // total durable-append time
//!       "wal_appends_per_sec": 3000.0,// operations logged per second
//!       "wal_bytes": 93411,           // bytes appended to the log
//!       "checkpoint_seconds": 0.004,  // one checkpoint (snapshot + prune)
//!       "snapshot_bytes": 401220,     // size of the snapshot file
//!       "setup_seconds": 0.03,        // model reconstruction (paid either way)
//!       "recovery_seconds": 0.01,     // open(): snapshot load + tail replay
//!       "replayed_rounds": 1,         // WAL rounds replayed by recovery
//!       "full_replay_seconds": 1.2,   // re-serve every round from zero
//!       "recovery_speedup": 120.0,    // full_replay / recovery
//!       "restart_speedup": 30.0,      // (setup+full_replay) / (setup+recovery)
//!       "recovery_matches": true      // recovered state is bit-identical
//!     }
//!   ]
//! }
//! ```

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DurabilityOptions, DurableEngine, DynamicC, Engine};
use dc_datagen::fixtures::{febrl_dataset_with_seed, small_access_workload, FIXTURE_SEED};
use dc_datagen::{DynamicWorkload, WorkloadConfig};
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, SimilarityGraph};
use dc_types::Clustering;
use std::path::PathBuf;
use std::sync::Arc;

/// Measured durability numbers for one fixture scenario.
#[derive(Debug, Clone)]
pub struct DurabilityScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served (and logged).
    pub operations: usize,
    /// Total wall-clock seconds spent in durable WAL appends.
    pub wal_append_seconds: f64,
    /// Bytes appended to the WAL across the served rounds.
    pub wal_bytes: u64,
    /// Wall-clock seconds for one checkpoint (snapshot write + prune).
    pub checkpoint_seconds: f64,
    /// Size of the snapshot file the checkpoint wrote.
    pub snapshot_bytes: u64,
    /// Wall-clock seconds to deterministically reconstruct the open-time
    /// inputs (graph config + trained models) that both a durable restart
    /// and a full replay must pay before serving.
    pub setup_seconds: f64,
    /// Wall-clock seconds for recovery (snapshot load + WAL tail replay).
    pub recovery_seconds: f64,
    /// WAL rounds the recovery replayed on top of the snapshot.
    pub replayed_rounds: usize,
    /// Wall-clock seconds to rebuild the serving state from round zero
    /// (initial aggregate build + serving every round), excluding the
    /// model-reconstruction setup that both alternatives pay.
    pub full_replay_seconds: f64,
    /// Whether the recovered engine matched the pre-kill engine bit-for-bit
    /// (clustering and stats).
    pub recovery_matches: bool,
}

impl DurabilityScenarioResult {
    /// Operations durably logged per second.
    pub fn wal_appends_per_sec(&self) -> f64 {
        if self.wal_append_seconds > 0.0 {
            self.operations as f64 / self.wal_append_seconds
        } else {
            0.0
        }
    }

    /// How many times faster the durability subsystem's recovery (snapshot
    /// load + WAL tail replay) is than re-serving every round from round
    /// zero.  This isolates the subsystem; both alternatives additionally
    /// pay [`DurabilityScenarioResult::setup_seconds`] to reconstruct the
    /// trained models — see `restart_speedup` for the whole-restart view.
    pub fn recovery_speedup(&self) -> f64 {
        if self.recovery_seconds > 0.0 {
            self.full_replay_seconds / self.recovery_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Whole-process restart speedup: `(setup + full serve from zero)` over
    /// `(setup + recovery)`.  Lower than `recovery_speedup` because the
    /// deterministic model reconstruction is paid on both sides.
    pub fn restart_speedup(&self) -> f64 {
        let restart = self.setup_seconds + self.recovery_seconds;
        if restart > 0.0 {
            (self.setup_seconds + self.full_replay_seconds) / restart
        } else {
            f64::INFINITY
        }
    }
}

fn temp_state_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dc-bench-durability-{tag}-{}", std::process::id()))
}

/// Deterministic train-then-previous pipeline shared by the durable run and
/// the full-replay baseline (this *is* the work full replay has to redo).
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..train_rounds.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

fn scenario(
    name: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> DurabilityScenarioResult {
    let serve = &workload.snapshots[train_rounds.min(workload.snapshots.len())..];
    let dir = temp_state_dir(name);
    let _ = std::fs::remove_dir_all(&dir);

    // Durable serving run.  Checkpoints are manual so the kill point lands
    // exactly one round after the last checkpoint — recovery then has a
    // realistic one-round tail to replay instead of an empty one.
    let (graph, previous, dynamicc) =
        trained_setup(workload, graph_config, objective.clone(), train_rounds);
    let config = graph.config().clone();
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };
    let (mut durable, _) =
        DurableEngine::open(&dir, config, dynamicc, options, move || (graph, previous))
            .expect("fresh open");
    let mut operations = 0usize;
    let mut checkpoint_seconds = 0.0;
    let mut wal_bytes = 0u64;
    for (i, snapshot) in serve.iter().enumerate() {
        operations += snapshot.batch.len();
        durable.apply_round(&snapshot.batch).expect("apply round");
        if i + 2 == serve.len() {
            // Checkpoint after the second-to-last round, so the engine dies
            // with exactly one logged-but-uncheckpointed round behind it.
            wal_bytes += durable.wal_bytes(); // segment the rotation retires
            let span = dc_telemetry::registry().span("bench.durability.checkpoint");
            durable.checkpoint().expect("checkpoint");
            checkpoint_seconds = span.finish_ns() as f64 / 1e9;
        }
    }
    wal_bytes += durable.wal_bytes();
    let snapshot_bytes = durable
        .artifact_paths()
        .expect("list artifacts")
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "dcsnap"))
        .map(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    let final_clustering = durable.clustering().clone();
    let final_stats = *durable.stats();
    drop(durable); // the kill

    // Isolated WAL-append cost: replay the same batches into a bare log.
    let append_dir = temp_state_dir(&format!("{name}-append"));
    let _ = std::fs::remove_dir_all(&append_dir);
    std::fs::create_dir_all(&append_dir).expect("create append dir");
    let wal_append_seconds = {
        let mut wal = dc_storage::Wal::create(&append_dir, 0).expect("create log");
        let span = dc_telemetry::registry().span("bench.durability.wal_append_loop");
        for (i, snapshot) in serve.iter().enumerate() {
            wal.append(&dc_storage::WalRecord {
                round: i as u64 + 1,
                batch: snapshot.batch.clone(),
            })
            .expect("append");
        }
        span.finish_ns() as f64 / 1e9
    };
    let _ = std::fs::remove_dir_all(&append_dir);

    // Recovery: snapshot load + one-round tail replay.  The trained-model
    // reconstruction is timed separately — a real restart pays it too, but
    // so does the full-replay alternative, so it belongs to neither ratio's
    // numerator exclusively.
    let setup_span = dc_telemetry::registry().span("bench.durability.trained_setup");
    let (graph, _, dynamicc) =
        trained_setup(workload, graph_config, objective.clone(), train_rounds);
    let setup_seconds = setup_span.finish_ns() as f64 / 1e9;
    let config = graph.config().clone();
    let span = dc_telemetry::registry().span("bench.durability.recovery");
    let (recovered, report) = DurableEngine::open(&dir, config, dynamicc, options, || {
        unreachable!("recovery must not bootstrap")
    })
    .expect("recovery");
    let recovery_seconds = span.finish_ns() as f64 / 1e9;
    let recovery_matches = recovered
        .clustering()
        .delta(&final_clustering)
        .is_unchanged()
        && recovered.clustering().cluster_ids() == final_clustering.cluster_ids()
        && recovered.stats() == &final_stats;
    let replayed_rounds = report.replayed_rounds;
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    // Full replay from round zero: what serving state costs to rebuild
    // without the durability subsystem — batch-cluster the initial data and
    // re-serve every round (the trained-model setup is timed apart, above,
    // since a durable restart pays it too).
    let (graph, previous, dynamicc) =
        trained_setup(workload, graph_config, objective, train_rounds);
    let span = dc_telemetry::registry().span("bench.durability.full_replay");
    let mut engine = Engine::new(graph, previous, dynamicc);
    for snapshot in serve {
        engine.apply_round(&snapshot.batch);
    }
    let full_replay_seconds = span.finish_ns() as f64 / 1e9;

    DurabilityScenarioResult {
        name: name.to_string(),
        objective: engine.dynamicc().objective().name().to_string(),
        rounds: serve.len(),
        operations,
        wal_append_seconds,
        wal_bytes,
        checkpoint_seconds,
        snapshot_bytes,
        setup_seconds,
        recovery_seconds,
        replayed_rounds,
        full_replay_seconds,
        recovery_matches,
    }
}

/// A longer dynamic workload over the small Febrl fixture dataset: same
/// data and seed discipline as `small_febrl_workload`, but 10 snapshots, so
/// "replay everything from round zero" is a realistic restart cost rather
/// than three rounds.
fn long_febrl_workload() -> DynamicWorkload {
    DynamicWorkload::generate(
        &febrl_dataset_with_seed(FIXTURE_SEED),
        WorkloadConfig {
            initial_fraction: 0.35,
            snapshots: 10,
            seed: FIXTURE_SEED ^ 0xABCD,
            ..WorkloadConfig::default()
        },
    )
}

/// Run the durability benchmark over the canned fixture workloads.
pub fn run_durability_bench() -> Vec<DurabilityScenarioResult> {
    vec![
        scenario(
            "febrl_dbindex_long",
            &long_febrl_workload(),
            || GraphConfig::textual_febrl(0.6),
            Arc::new(DbIndexObjective),
            2,
        ),
        scenario(
            "access_small_correlation",
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
            2,
        ),
    ]
}

/// Serialize the results to the `BENCH_durability.json` document.
pub fn durability_results_to_json(results: &[DurabilityScenarioResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"durability\",\n  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"rounds\": {},\n",
                "      \"operations\": {},\n",
                "      \"wal_append_seconds\": {:.6},\n",
                "      \"wal_appends_per_sec\": {:.2},\n",
                "      \"wal_bytes\": {},\n",
                "      \"checkpoint_seconds\": {:.6},\n",
                "      \"snapshot_bytes\": {},\n",
                "      \"setup_seconds\": {:.6},\n",
                "      \"recovery_seconds\": {:.6},\n",
                "      \"replayed_rounds\": {},\n",
                "      \"full_replay_seconds\": {:.6},\n",
                "      \"recovery_speedup\": {:.2},\n",
                "      \"restart_speedup\": {:.2},\n",
                "      \"recovery_matches\": {}\n",
                "    }}{}\n",
            ),
            r.name,
            r.objective,
            r.rounds,
            r.operations,
            r.wal_append_seconds,
            r.wal_appends_per_sec(),
            r.wal_bytes,
            r.checkpoint_seconds,
            r.snapshot_bytes,
            r.setup_seconds,
            r.recovery_seconds,
            r.replayed_rounds,
            r.full_replay_seconds,
            r.recovery_speedup(),
            r.restart_speedup(),
            r.recovery_matches,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_bench_recovers_fast_and_exactly() {
        let results = run_durability_bench();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.rounds > 0, "{}: no served rounds", r.name);
            assert!(r.operations > 0, "{}: no operations", r.name);
            assert!(r.wal_bytes > 0, "{}: nothing was logged", r.name);
            assert!(r.snapshot_bytes > 0, "{}: no snapshot", r.name);
            assert_eq!(
                r.replayed_rounds, 1,
                "{}: the kill point must leave a one-round tail",
                r.name
            );
            assert!(
                r.recovery_matches,
                "{}: recovered state must be bit-identical",
                r.name
            );
        }
        // Acceptance criterion: snapshot + tail replay recovers at least 5x
        // faster than a full replay from round zero on the db-index fixture.
        let dbindex = &results[0];
        assert!(
            dbindex.recovery_speedup() >= 5.0,
            "{}: recovery speedup {:.1} < 5",
            dbindex.name,
            dbindex.recovery_speedup()
        );
        assert!(
            dbindex.restart_speedup() > 1.0,
            "{}: a durable restart must beat a full replay end to end \
             (restart speedup {:.2})",
            dbindex.name,
            dbindex.restart_speedup()
        );
        let json = durability_results_to_json(&results);
        assert!(json.contains("\"bench\": \"durability\""));
        assert!(json.contains("recovery_speedup"));
        assert!(json.contains("\"recovery_matches\": true"));
    }
}
