//! The `BENCH_sharding` perf baseline: measured scaling of the
//! [`ShardedEngine`] over shard counts on the largest fixture workloads.
//!
//! The experiments binary (`experiments bench-sharding`) serializes
//! [`run_sharding_bench`]'s results to `BENCH_sharding.json`.  Each scenario
//! serves the identical workload through a sharded engine with 1, 2, 4, and
//! 8 shards (plus an unsharded [`Engine`] reference, to show the one-shard
//! facade adds no overhead) and records, per shard count:
//!
//! * wall-clock and ops/sec for the served rounds (partitioning and model
//!   training excluded — both are one-off construction costs);
//! * the structural outcome — live objects, merged clusters, merges/splits
//!   applied, objective evaluations, similarity comparisons — which is
//!   **deterministic**: CI runs the bench twice and diffs everything except
//!   the timing fields;
//! * the serving-path full-aggregate-build count, which must be **zero** for
//!   every shard count (each shard stays on the incremental path).
//!
//! The acceptance criterion of the sharding issue: 4 shards serve the
//! largest fixture at least 1.5x faster than 1 shard, enforced by this
//! module's test.
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "sharding",
//!   "scenarios": [
//!     {
//!       "name": "...",                  // fixture workload + objective
//!       "objective": "...",
//!       "rounds": 6,                    // served rounds (after training)
//!       "operations": 720,              // workload operations served
//!       "baseline_engine_seconds": 1.0, // unsharded Engine reference
//!       "runs": [
//!         {
//!           "shards": 1,
//!           "seconds": 1.01,            // wall-clock for the served rounds
//!           "ops_per_sec": 712.0,
//!           "mean_ms_per_round": 168.0,
//!           "speedup_vs_one_shard": 1.0,
//!           "objects": 560,             // live objects after the last round
//!           "clusters": 199,            // merged clusters after the last round
//!           "merges_applied": 120,
//!           "splits_applied": 3,
//!           "objective_evaluations": 900,
//!           "comparisons": 42000,       // similarity computations while serving
//!           "aggregate_full_builds": 0  // serving steady state (must stay 0)
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC, Engine, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, FIXTURE_SEED};
use dc_datagen::{DynamicWorkload, WorkloadConfig};
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{BuildCounter, GraphConfig, ShardRouter, SimilarityGraph};
use dc_types::Clustering;
use std::sync::Arc;

/// Shard counts every scenario is measured at.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Measured numbers for one shard count within a scenario.
#[derive(Debug, Clone)]
pub struct ShardingRunResult {
    /// Number of shards.
    pub shards: usize,
    /// Wall-clock seconds for the served rounds.
    pub seconds: f64,
    /// Live objects after the last round (shard-count independent).
    pub objects: usize,
    /// Merged clusters after the last round.
    pub clusters: usize,
    /// Merges applied across the served rounds (summed over shards).
    pub merges_applied: usize,
    /// Splits applied across the served rounds (summed over shards).
    pub splits_applied: usize,
    /// Objective delta evaluations during verification (summed over shards).
    pub objective_evaluations: u64,
    /// Similarity computations performed while serving (summed over shards).
    pub comparisons: u64,
    /// Full O(E) aggregate builds during serving (0 in steady state, for
    /// every shard count).
    pub aggregate_full_builds: u64,
}

/// Measured numbers for one fixture scenario across all shard counts.
#[derive(Debug, Clone)]
pub struct ShardingScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served.
    pub operations: usize,
    /// Wall-clock seconds for the same rounds through an unsharded
    /// [`Engine`] (the one-shard run should be within noise of this).
    pub baseline_engine_seconds: f64,
    /// One entry per element of [`SHARD_COUNTS`].
    pub runs: Vec<ShardingRunResult>,
}

impl ShardingScenarioResult {
    /// The run for a given shard count.
    pub fn run(&self, shards: usize) -> &ShardingRunResult {
        self.runs
            .iter()
            .find(|r| r.shards == shards)
            .expect("shard count was measured")
    }

    /// Wall-clock speedup of `shards` shards over one shard.
    pub fn speedup(&self, shards: usize) -> f64 {
        let one = self.run(1).seconds;
        let n = self.run(shards).seconds;
        if n > 0.0 {
            one / n
        } else {
            f64::INFINITY
        }
    }
}

impl ShardingRunResult {
    /// Operations per second, given the scenario's operation count.
    pub fn ops_per_sec(&self, operations: usize) -> f64 {
        if self.seconds > 0.0 {
            operations as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Mean serving latency per round in milliseconds.
    pub fn mean_ms_per_round(&self, rounds: usize) -> f64 {
        if rounds > 0 {
            self.seconds * 1e3 / rounds as f64
        } else {
            0.0
        }
    }
}

/// Deterministic train-then-previous pipeline, built once per scenario;
/// every run starts from an independent clone of the identical state (the
/// pipeline is deterministic, so cloning and rebuilding are
/// indistinguishable — the equivalence tests pin that).
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..train_rounds.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

fn scenario(
    name: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> ShardingScenarioResult {
    let serve = &workload.snapshots[train_rounds.min(workload.snapshots.len())..];
    let operations: usize = serve.iter().map(|s| s.batch.len()).sum();

    let (trained_graph, trained_previous, trained_dynamicc) =
        trained_setup(workload, graph_config, objective.clone(), train_rounds);
    let objective_name = trained_dynamicc.objective().name().to_string();

    // Unsharded reference.
    let mut engine = Engine::new(
        trained_graph.clone(),
        trained_previous.clone(),
        trained_dynamicc.clone(),
    );
    let span = dc_telemetry::registry().span("bench.sharding.baseline_loop");
    for snapshot in serve {
        engine.apply_round(&snapshot.batch);
    }
    let baseline_engine_seconds = span.finish_ns() as f64 / 1e9;

    let mut runs = Vec::with_capacity(SHARD_COUNTS.len());
    for shards in SHARD_COUNTS {
        let (graph, previous, dynamicc) = (
            trained_graph.clone(),
            trained_previous.clone(),
            trained_dynamicc.clone(),
        );
        let router = ShardRouter::for_config(shards, graph.config());
        let comparisons_before = graph.comparisons();
        // Raw mode: this bench pins the *scaling* of the parallel partition
        // alone.  The refined mode's quality and cost are measured by
        // `bench-shard-quality` (BENCH_shard_quality.json).
        let mut sharded = ShardedEngine::new_raw(router, graph, previous, dynamicc)
            .expect("fixture clustering fits the shard-0 namespace");
        let stats_before = sharded.stats();

        let span = dc_telemetry::registry().span("bench.sharding.serve_loop");
        let ((), aggregate_full_builds) = BuildCounter::scope(|| {
            for snapshot in serve {
                sharded.apply_round(&snapshot.batch);
            }
        });
        let seconds = span.finish_ns() as f64 / 1e9;

        let stats = sharded.stats();
        runs.push(ShardingRunResult {
            shards,
            seconds,
            objects: sharded.object_count(),
            clusters: sharded.merged_clustering().cluster_count(),
            merges_applied: stats.merges_applied - stats_before.merges_applied,
            splits_applied: stats.splits_applied - stats_before.splits_applied,
            objective_evaluations: stats.objective_evaluations - stats_before.objective_evaluations,
            comparisons: sharded.comparisons() - comparisons_before,
            aggregate_full_builds,
        });
    }

    ShardingScenarioResult {
        name: name.to_string(),
        objective: objective_name,
        rounds: serve.len(),
        operations,
        baseline_engine_seconds,
        runs,
    }
}

/// The largest fixture workload in the repository: a Febrl-like dataset of
/// 300 original entities (~840 records with duplicates) under a 6-snapshot
/// dynamic workload.  Big enough that a round's serving work dominates the
/// scoped-thread-pool overhead, which is what makes the shard-count scaling
/// measurement meaningful.
pub fn large_febrl_workload() -> DynamicWorkload {
    let dataset = dc_datagen::FebrlLikeGenerator {
        originals: 300,
        duplicates_per_original: 1.8,
        seed: FIXTURE_SEED,
        ..dc_datagen::FebrlLikeGenerator::default()
    }
    .generate();
    DynamicWorkload::generate(
        &dataset,
        WorkloadConfig {
            initial_fraction: 0.35,
            snapshots: 6,
            seed: FIXTURE_SEED ^ 0x51AD,
            ..WorkloadConfig::default()
        },
    )
}

/// The graph configuration the textual sharding scenario measures under:
/// the Febrl composite measure with **exact** token blocking (no stop-word
/// cutoff).  `GraphConfig::textual_febrl`'s cutoff of 256 skips blocks
/// larger than 256 records when querying, which makes the candidate
/// semantics depend on shard size (a block that is over the cutoff in the
/// full graph falls under it in a quarter-size shard and suddenly produces
/// comparisons).  Exact blocking gives every shard count the same
/// semantics, so the measured scaling is the partition's, not the cutoff's.
pub fn sharded_febrl_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dc_similarity::measures::CompositeMeasure::febrl_default()),
        Box::new(dc_similarity::TokenBlocking::new(0)),
        0.6,
    )
}

/// Run the sharding benchmark over the fixture workloads.  The first
/// scenario is the largest (the one the acceptance ratio is enforced on).
pub fn run_sharding_bench() -> Vec<ShardingScenarioResult> {
    vec![
        scenario(
            "febrl_large_dbindex",
            &large_febrl_workload(),
            sharded_febrl_config,
            Arc::new(DbIndexObjective),
            2,
        ),
        scenario(
            "access_small_correlation",
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
            2,
        ),
    ]
}

/// Serialize the results to the `BENCH_sharding.json` document.
pub fn sharding_results_to_json(results: &[ShardingScenarioResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"sharding\",\n  \"scenarios\": [\n");
    for (i, scenario) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"rounds\": {},\n",
                "      \"operations\": {},\n",
                "      \"baseline_engine_seconds\": {:.6},\n",
                "      \"runs\": [\n",
            ),
            scenario.name,
            scenario.objective,
            scenario.rounds,
            scenario.operations,
            scenario.baseline_engine_seconds,
        ));
        for (j, run) in scenario.runs.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"shards\": {},\n",
                    "          \"seconds\": {:.6},\n",
                    "          \"ops_per_sec\": {:.2},\n",
                    "          \"mean_ms_per_round\": {:.3},\n",
                    "          \"speedup_vs_one_shard\": {:.2},\n",
                    "          \"objects\": {},\n",
                    "          \"clusters\": {},\n",
                    "          \"merges_applied\": {},\n",
                    "          \"splits_applied\": {},\n",
                    "          \"objective_evaluations\": {},\n",
                    "          \"comparisons\": {},\n",
                    "          \"aggregate_full_builds\": {}\n",
                    "        }}{}\n",
                ),
                run.shards,
                run.seconds,
                run.ops_per_sec(scenario.operations),
                run.mean_ms_per_round(scenario.rounds),
                scenario.speedup(run.shards),
                run.objects,
                run.clusters,
                run.merges_applied,
                run.splits_applied,
                run.objective_evaluations,
                run.comparisons,
                run.aggregate_full_builds,
                if j + 1 == scenario.runs.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_bench_scales_and_stays_on_the_incremental_path() {
        let results = run_sharding_bench();
        assert_eq!(results.len(), 2);
        for scenario in &results {
            assert!(scenario.rounds > 0, "{}: no served rounds", scenario.name);
            assert!(scenario.operations > 0, "{}: no operations", scenario.name);
            assert_eq!(scenario.runs.len(), SHARD_COUNTS.len());
            let objects = scenario.run(1).objects;
            for run in &scenario.runs {
                // Zero full aggregate builds per shard per round, at every
                // shard count: sharding must not fall off the incremental
                // path.
                assert_eq!(
                    run.aggregate_full_builds, 0,
                    "{}: {} shards rebuilt aggregates while serving",
                    scenario.name, run.shards
                );
                // Coverage is shard-count independent.
                assert_eq!(
                    run.objects, objects,
                    "{}: {} shards changed the live-object count",
                    scenario.name, run.shards
                );
            }
        }
        // Acceptance criterion: >= 1.5x wall-clock speedup at 4 shards on
        // the largest fixture.
        let largest = &results[0];
        assert!(
            largest.speedup(4) >= 1.5,
            "{}: 4-shard speedup {:.2} < 1.5 (1 shard {:.3}s, 4 shards {:.3}s)",
            largest.name,
            largest.speedup(4),
            largest.run(1).seconds,
            largest.run(4).seconds,
        );
        let json = sharding_results_to_json(&results);
        assert!(json.contains("\"bench\": \"sharding\""));
        assert!(json.contains("speedup_vs_one_shard"));
    }
}
