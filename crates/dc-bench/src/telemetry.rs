//! Telemetry smoke run and overhead gate.
//!
//! Two jobs live here, both driven by the `experiments` binary and the test
//! suite:
//!
//! * [`run_telemetry_smoke`] serves the febrl fixture through the full stack
//!   (training → sharded durable serving → checkpoint → crash → recovery)
//!   with telemetry **on** and returns the resulting
//!   [`TelemetrySnapshot`] — the committed `TELEMETRY_SMOKE.json` example
//!   dump is exactly its [`TelemetrySnapshot::to_json`] rendering.  The run
//!   asserts the observability acceptance criterion along the way: the
//!   coordinating-thread phase spans ([`ROUND_PHASES`]) must account for at
//!   least 90 % of the measured `round.total` wall time, i.e. the per-round
//!   phase breakdown explains where the round went.
//! * [`run_telemetry_overhead_gate`] measures the same serving loop as the
//!   `bench-serving` scenario with telemetry off and on (best-of-N each,
//!   interleaved) and reports the throughput ratio.  The dc-bench gate test
//!   asserts the ratio stays within the contract: telemetry-on serving must
//!   be within 5 % of telemetry-off.
//!
//! Both entry points reset the calling thread's registry on entry and leave
//! telemetry disabled (and the registry empty) on exit, so they compose with
//! the exact-count assertions elsewhere in the test suite.

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DurabilityOptions, DynamicC, Engine, ShardedDurableEngine};
use dc_datagen::fixtures::small_febrl_workload;
use dc_datagen::DynamicWorkload;
use dc_objective::{DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph};
use dc_telemetry::{registry, TelemetryConfig, TelemetrySnapshot};
use dc_types::Clustering;
use std::path::PathBuf;
use std::sync::Arc;

/// Shard count of the smoke run.
pub const SMOKE_SHARDS: usize = 2;
/// Training prefix of the smoke run (matches the serving bench).
pub const SMOKE_TRAIN_ROUNDS: usize = 2;
/// Checkpoint cadence of the smoke run, in rounds.
pub const SMOKE_CHECKPOINT_EVERY: usize = 2;

/// The coordinating-thread phase spans of one sharded durable round, in
/// execution order.  Their summed wall time must explain the enclosing
/// `round.total` span to within the acceptance bound checked by
/// [`TelemetrySmokeResult::phase_coverage`].
pub const ROUND_PHASES: [&str; 5] = [
    "round.route",
    "round.shard_apply",
    "round.refine_wal_append",
    "round.refine",
    "round.checkpoint",
];

/// Outcome of the telemetry smoke run.
#[derive(Debug, Clone)]
pub struct TelemetrySmokeResult {
    /// Rounds served after the training prefix.
    pub rounds: usize,
    /// Workload operations served.
    pub operations: usize,
    /// Fraction of `round.total` wall time explained by the
    /// [`ROUND_PHASES`] spans (1.0 = fully explained).
    pub phase_coverage: f64,
    /// The captured registry contents covering every instrumented layer.
    pub snapshot: TelemetrySnapshot,
}

impl TelemetrySmokeResult {
    /// Render the captured snapshot as the stable JSON dump (the committed
    /// `TELEMETRY_SMOKE.json` format).
    pub fn to_json(&self) -> String {
        self.snapshot.to_json()
    }
}

fn temp_state_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dc-bench-telemetry-{tag}-{}", std::process::id()))
}

/// Deterministic train-then-previous pipeline (same shape as the durability
/// bench's): batch-cluster the initial data, train DynamicC on the prefix.
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
    train_rounds: usize,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..train_rounds.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

/// Serve the febrl fixture through the whole instrumented stack with
/// telemetry on and capture the registry: train, open a sharded durable
/// engine, serve every held-out round (auto-checkpointing), kill it, and
/// recover from disk — so the snapshot covers training, routing, per-shard
/// apply, cross-shard refinement, WAL/snapshot storage, checkpointing, and
/// recovery in one run.
///
/// Panics if any layer's metrics are missing from the snapshot or if the
/// phase breakdown explains less than 90 % of the round wall time.
pub fn run_telemetry_smoke() -> TelemetrySmokeResult {
    let reg = registry();
    reg.reset();
    TelemetryConfig::enabled().apply();

    let workload = small_febrl_workload();
    let serve = &workload.snapshots[SMOKE_TRAIN_ROUNDS.min(workload.snapshots.len())..];
    let (graph, previous, dynamicc) = trained_setup(
        &workload,
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
        SMOKE_TRAIN_ROUNDS,
    );

    let dir = temp_state_dir("smoke");
    let _ = std::fs::remove_dir_all(&dir);
    let router = ShardRouter::for_config(SMOKE_SHARDS, graph.config());
    let options = DurabilityOptions {
        checkpoint_every_rounds: SMOKE_CHECKPOINT_EVERY,
        group_commit: false,
    };
    let (mut engine, _) = ShardedDurableEngine::open(
        &dir,
        router,
        GraphConfig::textual_febrl(0.6),
        dynamicc.clone(),
        options,
        move || (graph, previous),
    )
    .expect("fresh open");
    let mut operations = 0usize;
    for snapshot in serve {
        operations += snapshot.batch.len();
        engine.apply_round(&snapshot.batch).expect("serve round");
    }
    drop(engine); // the kill

    // Recover from disk so the snapshot also carries the recovery metrics.
    let router = ShardRouter::for_config(SMOKE_SHARDS, &GraphConfig::textual_febrl(0.6));
    let (recovered, report) = ShardedDurableEngine::open(
        &dir,
        router,
        GraphConfig::textual_febrl(0.6),
        dynamicc,
        options,
        || unreachable!("durable state exists"),
    )
    .expect("reopen");
    assert!(report.recovered, "smoke run must recover, not bootstrap");
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);

    let snapshot = reg.snapshot();
    TelemetryConfig::default().apply();
    reg.reset();

    let phase_coverage = phase_coverage(&snapshot);
    assert!(
        phase_coverage >= 0.9,
        "round phases explain only {:.1}% of round.total wall time",
        phase_coverage * 100.0
    );
    for name in REQUIRED_SMOKE_METRICS {
        let present = snapshot.counters.contains_key(*name)
            || snapshot.gauges.contains_key(*name)
            || snapshot.histograms.contains_key(*name);
        assert!(present, "smoke snapshot is missing metric {name}");
    }
    TelemetrySmokeResult {
        rounds: serve.len(),
        operations,
        phase_coverage,
        snapshot,
    }
}

/// One representative metric per instrumented layer; the smoke run asserts
/// each is present so a refactor can't silently un-instrument a layer.
pub const REQUIRED_SMOKE_METRICS: &[&str] = &[
    "train.batch_recluster",  // training
    "aggregates.full_builds", // similarity aggregates
    "engine.apply_round",     // per-shard engine
    "shard.apply",            // worker wall time
    "shard.batch_imbalance",  // routing balance gauge
    "round.total",            // sharded round breakdown
    "round.route",
    "round.shard_apply",
    "round.refine",
    "round.refine_wal_append",
    "round.checkpoint",
    "round.wal_append", // per-shard durable append phase
    "storage.fsync",    // storage
    "storage.wal_append",
    "storage.wal_bytes_appended",
    "storage.snapshot_write",
    "checkpoint.total", // checkpointing
    "refine.repair",    // cross-shard refinement
    "refine.boundary_pairs",
    "recovery.snapshot_load", // recovery
    "recovery.replay",
    "recovery.replayed_rounds",
];

/// Fraction of `round.total` wall time explained by the [`ROUND_PHASES`]
/// spans in `snapshot` (0.0 when no rounds were recorded).
pub fn phase_coverage(snapshot: &TelemetrySnapshot) -> f64 {
    let total = snapshot
        .histograms
        .get("round.total")
        .map(|h| h.sum())
        .unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let phases: u64 = ROUND_PHASES
        .iter()
        .filter_map(|name| snapshot.histograms.get(*name))
        .map(|h| h.sum())
        .sum();
    phases as f64 / total as f64
}

/// Measured serving throughput with telemetry off vs on.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryOverheadResult {
    /// Best-of-N seconds for the serving loop with telemetry off.
    pub off_seconds: f64,
    /// Best-of-N seconds for the same loop with telemetry on.
    pub on_seconds: f64,
    /// Operations served per rep.
    pub operations: usize,
}

impl TelemetryOverheadResult {
    /// `on / off` wall-time ratio; 1.0 means observation is free, and the
    /// gate requires ≤ 1.05 (telemetry-on throughput within 5 % of off).
    pub fn overhead_ratio(&self) -> f64 {
        if self.off_seconds > 0.0 {
            self.on_seconds / self.off_seconds
        } else {
            1.0
        }
    }
}

/// Measure the `bench-serving` loop (unsharded engine over the febrl
/// fixture) with telemetry off and on, `reps` times each, interleaved, and
/// keep the best rep per mode.  The trained pipeline is built once and
/// cloned per rep, so every rep serves identical state and the comparison
/// isolates the instrumentation cost.
pub fn run_telemetry_overhead_gate(reps: usize) -> TelemetryOverheadResult {
    let reg = registry();
    reg.reset();
    reg.set_enabled(false);

    let workload = small_febrl_workload();
    let serve = workload.snapshots[SMOKE_TRAIN_ROUNDS.min(workload.snapshots.len())..].to_vec();
    let (graph, previous, dynamicc) = trained_setup(
        &workload,
        || GraphConfig::textual_febrl(0.6),
        Arc::new(DbIndexObjective),
        SMOKE_TRAIN_ROUNDS,
    );
    let operations: usize = serve.iter().map(|s| s.batch.len()).sum();

    let serve_rep = |enabled: bool| -> f64 {
        reg.set_enabled(enabled);
        let mut engine = Engine::new(graph.clone(), previous.clone(), dynamicc.clone());
        let span = reg.span("bench.telemetry.overhead_rep");
        for snapshot in &serve {
            engine.apply_round(&snapshot.batch);
        }
        let seconds = span.finish_ns() as f64 / 1e9;
        reg.set_enabled(false);
        seconds
    };

    // Warm-up rep per mode (page in code and data), then interleave the
    // measured reps so drift hits both modes equally.
    let _ = serve_rep(false);
    let _ = serve_rep(true);
    let mut off_seconds = f64::INFINITY;
    let mut on_seconds = f64::INFINITY;
    for _ in 0..reps.max(1) {
        off_seconds = off_seconds.min(serve_rep(false));
        on_seconds = on_seconds.min(serve_rep(true));
    }
    reg.reset();
    TelemetryOverheadResult {
        off_seconds,
        on_seconds,
        operations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_layer_and_explains_the_round() {
        let result = run_telemetry_smoke();
        assert!(result.rounds > 0, "no served rounds");
        assert!(result.operations > 0, "no operations");
        // run_telemetry_smoke already asserts coverage >= 0.9 and metric
        // presence; pin the headline numbers into the report too.
        assert!(result.phase_coverage >= 0.9);
        assert!(result.phase_coverage <= 1.01, "phases exceed the round");
        let rounds = result.snapshot.histograms["round.total"].count();
        assert_eq!(rounds as usize, result.rounds, "one round.total per round");
        let json = result.to_json();
        assert!(json.contains("\"round.total\""));
        assert!(json.contains("\"recovery.replayed_rounds\""));
    }

    #[test]
    fn smoke_structural_fields_are_deterministic_across_runs() {
        // The CI job diffs two full binary runs; this is the in-process
        // version of the same contract — everything but the `_ns` timing
        // lines must be identical.
        let strip = |json: &str| -> String {
            json.lines()
                .filter(|l| !l.contains("_ns\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = run_telemetry_smoke().to_json();
        let b = run_telemetry_smoke().to_json();
        assert_eq!(strip(&a), strip(&b), "structural telemetry fields drifted");
    }

    /// The 5 % overhead contract is a release-mode claim (CI runs this test
    /// with `cargo test --release` as its own gate step); under the fully
    /// parallel debug-mode suite the measurement is dominated by scheduler
    /// contention and unoptimized code, so the assertion is skipped there.
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "overhead gate is enforced in release mode (see CI)"
    )]
    fn telemetry_overhead_stays_within_the_gate() {
        let result = run_telemetry_overhead_gate(5);
        assert!(result.off_seconds > 0.0 && result.off_seconds.is_finite());
        assert!(result.on_seconds > 0.0 && result.on_seconds.is_finite());
        assert!(
            result.overhead_ratio() <= 1.05,
            "telemetry-on serving is {:.1}% slower than off (gate: 5%)",
            (result.overhead_ratio() - 1.0) * 100.0
        );
    }
}
