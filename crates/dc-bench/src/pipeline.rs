//! The `BENCH_pipeline` perf baseline: the pipelined ingestion front-end
//! against the synchronous sharded durable engine on the same op stream.
//!
//! The experiments binary (`experiments bench-pipeline`) serializes
//! [`run_pipeline_bench`]'s results to `BENCH_pipeline.json`.  One scenario:
//! the largest fixture workload ([`large_febrl_workload`]), flattened into a
//! continuous ingestion stream of [`GRANULE_OPS`]-operation client
//! requests, served through a 4-shard [`ShardedDurableEngine`] twice —
//!
//! * **sync**: the synchronous front-end — every request is its own round
//!   (`group_commit: false`), durably committed with N+1 fsyncs and refined
//!   before the next request is admitted;
//! * **pipelined**: the same stream pushed open-loop through a
//!   [`PipelinedEngine`], whose coordinator coalesces admissions into
//!   [`BATCH_OPS`]-op rounds, group-commits each with a single fsync, and
//!   hands refinement to the overlap worker.
//!
//! Both modes are **individually deterministic**: the stream order is fixed,
//! and the pipelined run uses a fixed batch target with an effectively
//! unbounded formation deadline, so its coordinator forms exactly the same
//! chunks on every run regardless of scheduling.  CI runs the bench twice
//! and diffs everything except the timing fields.  `states_match` reports
//! whether the two modes' final merged + refined clusterings were
//! bit-identical despite their different round boundaries (the dc-core
//! equivalence tests pin the same-boundaries case exactly; here the fixed
//! point is given the chance to converge to the same state and the result
//! is recorded).
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "pipeline",
//!   "scenarios": [
//!     {
//!       "name": "febrl_large_dbindex",
//!       "objective": "db-index",
//!       "shards": 4,
//!       "operations": 512,              // stream operations served
//!       "granule_ops": 8,               // request size (sync round size)
//!       "batch_ops": 64,                // pipelined round target
//!       "states_match": true,           // merged+refined clusterings equal
//!       "speedup_vs_sync": 1.55,
//!       "runs": [
//!         {
//!           "mode": "sync",             // or "pipelined"
//!           "rounds": 64,               // rounds committed in this mode
//!           "seconds": 1.0,
//!           "ops_per_sec": 512.0,
//!           "p50_op_latency_ns": 0,     // per-op commit latency (0 = sync:
//!           "p99_op_latency_ns": 0,     //   not measured per op)
//!           "objects": 560,
//!           "clusters": 199,
//!           "merges_applied": 120,
//!           "splits_applied": 3,
//!           "objective_evaluations": 900
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```

use crate::sharding::{large_febrl_workload, sharded_febrl_config};
use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{
    train_on_workload, DurabilityOptions, DynamicC, PipelineOptions, PipelinedEngine,
    ShardedDurableEngine,
};
use dc_datagen::DynamicWorkload;
use dc_objective::{DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph};
use dc_types::{Clustering, Operation, OperationBatch};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Shard count the pipeline scenario is measured at (the acceptance ratio's
/// configuration).
pub const PIPELINE_SHARDS: usize = 4;

/// Client-request granule of the ingestion stream: the synchronous
/// front-end must durably commit (and refine) each request before
/// acknowledging it, so it serves one round per granule.
pub const GRANULE_OPS: usize = 4;

/// The pipelined coordinator's batch target: admissions from many requests
/// coalesce into one group-committed round.
pub const BATCH_OPS: usize = 64;

/// Training rounds consumed before the measured serve window.
const TRAIN_ROUNDS: usize = 2;

/// Measured numbers for one serving mode within the scenario.
#[derive(Debug, Clone)]
pub struct PipelineRunResult {
    /// `"sync"` or `"pipelined"`.
    pub mode: &'static str,
    /// Rounds committed in this mode (`operations / granule_ops` for sync,
    /// `operations / batch_ops` for pipelined).
    pub rounds: usize,
    /// Wall-clock seconds for the served stream (drain-to-drain for the
    /// pipelined mode: first submit through the final flush).
    pub seconds: f64,
    /// Median per-operation commit latency in nanoseconds, measured from
    /// admission to group-commit fsync.  Zero in sync mode, which has no
    /// per-op admission point.
    pub p50_op_latency_ns: u64,
    /// 99th-percentile per-operation commit latency (see
    /// [`PipelineRunResult::p50_op_latency_ns`]).
    pub p99_op_latency_ns: u64,
    /// Live objects after the last round.
    pub objects: usize,
    /// Merged clusters after the last round.
    pub clusters: usize,
    /// Merges applied across the served rounds.
    pub merges_applied: usize,
    /// Splits applied across the served rounds.
    pub splits_applied: usize,
    /// Objective delta evaluations during verification.
    pub objective_evaluations: u64,
}

impl PipelineRunResult {
    /// Operations per second, given the scenario's operation count.
    pub fn ops_per_sec(&self, operations: usize) -> f64 {
        if self.seconds > 0.0 {
            operations as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Measured numbers for the pipeline scenario.
#[derive(Debug, Clone)]
pub struct PipelineScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Shard count both modes ran at.
    pub shards: usize,
    /// Total stream operations served.
    pub operations: usize,
    /// Client-request granule (the sync mode's round size).
    pub granule_ops: usize,
    /// The pipelined coordinator's batch target.
    pub batch_ops: usize,
    /// Whether the two modes' final states (merged *and* refined
    /// clusterings) were bit-identical despite different round boundaries.
    pub states_match: bool,
    /// One entry per mode: `sync` first, then `pipelined`.
    pub runs: Vec<PipelineRunResult>,
}

impl PipelineScenarioResult {
    /// The run for a given mode.
    pub fn run(&self, mode: &str) -> &PipelineRunResult {
        self.runs
            .iter()
            .find(|r| r.mode == mode)
            .expect("mode was measured")
    }

    /// Sustained-throughput speedup of the pipelined mode over sync.
    pub fn speedup(&self) -> f64 {
        let sync = self.run("sync").seconds;
        let pipelined = self.run("pipelined").seconds;
        if pipelined > 0.0 {
            sync / pipelined
        } else {
            f64::INFINITY
        }
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dc-bench-pipeline-{tag}-{}", std::process::id()))
}

fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..TRAIN_ROUNDS.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

/// The serve window's operations, flattened into one ingestion stream.
fn serve_stream(workload: &DynamicWorkload) -> Vec<Operation> {
    workload.snapshots[TRAIN_ROUNDS.min(workload.snapshots.len())..]
        .iter()
        .flat_map(|s| s.batch.iter().cloned())
        .collect()
}

/// Chunk the stream into fixed `size`-op batches.
fn chunked(stream: &[Operation], size: usize) -> Vec<OperationBatch> {
    stream
        .chunks(size)
        .map(|chunk| {
            let mut batch = OperationBatch::new();
            for op in chunk {
                batch.push(op.clone());
            }
            batch
        })
        .collect()
}

fn open_engine(
    dir: &std::path::Path,
    workload: &DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    options: DurabilityOptions,
) -> ShardedDurableEngine {
    let (graph, previous, dynamicc) = trained_setup(workload, sharded_febrl_config, objective);
    let router = ShardRouter::for_config(PIPELINE_SHARDS, graph.config());
    let config = graph.config().clone();
    let (engine, report) =
        ShardedDurableEngine::open(dir, router, config, dynamicc, options, move || {
            (graph, previous)
        })
        .expect("fresh bench directory opens");
    assert!(!report.recovered, "bench directories start fresh");
    engine
}

fn run_result_fields(engine: &ShardedDurableEngine) -> (usize, usize) {
    let objects = engine
        .shards()
        .iter()
        .map(|s| s.engine().graph().object_count())
        .sum();
    let clusters = engine.merged_clustering().cluster_count();
    (objects, clusters)
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * pct).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Run the pipeline benchmark: the largest fixture's op stream through sync
/// and pipelined serving at [`PIPELINE_SHARDS`] shards.
pub fn run_pipeline_bench() -> Vec<PipelineScenarioResult> {
    let workload = large_febrl_workload();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let stream = serve_stream(&workload);
    let operations = stream.len();
    let options = DurabilityOptions {
        checkpoint_every_rounds: 0,
        group_commit: false,
    };

    // Sync: one classic round per client request.
    let sync_rounds = chunked(&stream, GRANULE_OPS);
    let sync_dir = bench_dir("sync");
    let _ = std::fs::remove_dir_all(&sync_dir);
    let mut sync_engine = open_engine(&sync_dir, &workload, objective.clone(), options);
    let stats_before = sync_engine.stats();
    let span = dc_telemetry::registry().span("bench.pipeline.sync_loop");
    for batch in &sync_rounds {
        sync_engine.apply_round(batch).expect("sync round");
    }
    let sync_seconds = span.finish_ns() as f64 / 1e9;
    let stats = sync_engine.stats();
    let (objects, clusters) = run_result_fields(&sync_engine);
    let sync_run = PipelineRunResult {
        mode: "sync",
        rounds: sync_rounds.len(),
        seconds: sync_seconds,
        p50_op_latency_ns: 0,
        p99_op_latency_ns: 0,
        objects,
        clusters,
        merges_applied: stats.merges_applied - stats_before.merges_applied,
        splits_applied: stats.splits_applied - stats_before.splits_applied,
        objective_evaluations: stats.objective_evaluations - stats_before.objective_evaluations,
    };

    // Pipelined: the same stream, open-loop.  A fixed batch target with an
    // effectively unbounded formation deadline makes the coordinator form
    // the same [`BATCH_OPS`]-op chunks on every run, so the measured run is
    // structurally deterministic.
    let pipe_dir = bench_dir("pipelined");
    let _ = std::fs::remove_dir_all(&pipe_dir);
    let engine = open_engine(&pipe_dir, &workload, objective.clone(), options);
    let stats_before = engine.stats();
    let pipe = PipelinedEngine::start(
        engine,
        PipelineOptions {
            max_batch_delay: Duration::from_secs(30),
            ..PipelineOptions::fixed(BATCH_OPS)
        },
    );
    let span = dc_telemetry::registry().span("bench.pipeline.pipelined_loop");
    for op in &stream {
        pipe.submit(op.clone()).expect("submit");
    }
    pipe.flush().expect("drain");
    let pipelined_seconds = span.finish_ns() as f64 / 1e9;
    let (pipe_engine, report) = pipe.close().expect("clean close");
    assert_eq!(
        report.rounds_committed,
        operations.div_ceil(BATCH_OPS) as u64
    );
    assert_eq!(report.ops_committed, operations as u64);
    let mut latencies = report.op_latencies_ns;
    latencies.sort_unstable();
    let stats = pipe_engine.stats();
    let (objects, clusters) = run_result_fields(&pipe_engine);
    let pipelined_run = PipelineRunResult {
        mode: "pipelined",
        rounds: report.rounds_committed as usize,
        seconds: pipelined_seconds,
        p50_op_latency_ns: percentile(&latencies, 0.50),
        p99_op_latency_ns: percentile(&latencies, 0.99),
        objects,
        clusters,
        merges_applied: stats.merges_applied - stats_before.merges_applied,
        splits_applied: stats.splits_applied - stats_before.splits_applied,
        objective_evaluations: stats.objective_evaluations - stats_before.objective_evaluations,
    };

    let states_match = clusterings_equal(
        &sync_engine.merged_clustering(),
        &pipe_engine.merged_clustering(),
    ) && clusterings_equal(
        &sync_engine.refined_clustering(),
        &pipe_engine.refined_clustering(),
    );
    drop(sync_engine);
    drop(pipe_engine);
    let _ = std::fs::remove_dir_all(&sync_dir);
    let _ = std::fs::remove_dir_all(&pipe_dir);

    vec![PipelineScenarioResult {
        name: "febrl_large_dbindex".to_string(),
        objective: "db-index".to_string(),
        shards: PIPELINE_SHARDS,
        operations,
        granule_ops: GRANULE_OPS,
        batch_ops: BATCH_OPS,
        states_match,
        runs: vec![sync_run, pipelined_run],
    }]
}

fn clusterings_equal(a: &Clustering, b: &Clustering) -> bool {
    a.cluster_ids() == b.cluster_ids()
        && a.cluster_ids().iter().all(|&cid| {
            a.cluster(cid).map(|c| c.members().clone())
                == b.cluster(cid).map(|c| c.members().clone())
        })
        && a.id_watermark() == b.id_watermark()
}

/// Serialize the results to the `BENCH_pipeline.json` document.
pub fn pipeline_results_to_json(results: &[PipelineScenarioResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"pipeline\",\n  \"scenarios\": [\n");
    for (i, scenario) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"shards\": {},\n",
                "      \"operations\": {},\n",
                "      \"granule_ops\": {},\n",
                "      \"batch_ops\": {},\n",
                "      \"states_match\": {},\n",
                "      \"speedup_vs_sync\": {:.2},\n",
                "      \"runs\": [\n",
            ),
            scenario.name,
            scenario.objective,
            scenario.shards,
            scenario.operations,
            scenario.granule_ops,
            scenario.batch_ops,
            scenario.states_match,
            scenario.speedup(),
        ));
        for (j, run) in scenario.runs.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"mode\": \"{}\",\n",
                    "          \"rounds\": {},\n",
                    "          \"seconds\": {:.6},\n",
                    "          \"ops_per_sec\": {:.2},\n",
                    "          \"p50_op_latency_ns\": {},\n",
                    "          \"p99_op_latency_ns\": {},\n",
                    "          \"objects\": {},\n",
                    "          \"clusters\": {},\n",
                    "          \"merges_applied\": {},\n",
                    "          \"splits_applied\": {},\n",
                    "          \"objective_evaluations\": {}\n",
                    "        }}{}\n",
                ),
                run.mode,
                run.rounds,
                run.seconds,
                run.ops_per_sec(scenario.operations),
                run.p50_op_latency_ns,
                run.p99_op_latency_ns,
                run.objects,
                run.clusters,
                run.merges_applied,
                run.splits_applied,
                run.objective_evaluations,
                if j + 1 == scenario.runs.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate of the pipeline issue: at 4 shards on the
    /// largest fixture's ingestion stream, the pipelined front-end sustains
    /// at least 1.3x the synchronous engine's ops/sec (request admissions
    /// coalesce into group-committed rounds — one fsync and one refinement
    /// pass per [`BATCH_OPS`] ops instead of per [`GRANULE_OPS`] ops).
    #[test]
    fn pipelined_serving_outpaces_sync_ingestion() {
        let results = run_pipeline_bench();
        assert_eq!(results.len(), 1);
        let scenario = &results[0];
        assert_eq!(scenario.runs.len(), 2);
        let sync = scenario.run("sync");
        let pipelined = scenario.run("pipelined");
        assert!(
            sync.rounds > pipelined.rounds,
            "the pipeline must coalesce requests into fewer rounds"
        );
        // The stream is identical, so the surviving object set is too; the
        // clusterings may differ only by round-boundary placement.
        assert_eq!(
            sync.objects, pipelined.objects,
            "live-object count diverged"
        );
        assert!(
            pipelined.p99_op_latency_ns >= pipelined.p50_op_latency_ns,
            "percentiles must be ordered"
        );
        assert!(
            scenario.speedup() >= 1.3,
            "{}: pipelined speedup {:.2} < 1.3 (sync {:.3}s, pipelined {:.3}s)",
            scenario.name,
            scenario.speedup(),
            sync.seconds,
            pipelined.seconds,
        );
        let json = pipeline_results_to_json(&results);
        assert!(json.contains("\"bench\": \"pipeline\""));
        assert!(json.contains("\"mode\": \"pipelined\""));
    }
}
