//! Experiment driver: regenerates every table and figure of the DynamicC
//! paper's evaluation section on the synthetic dataset stand-ins.
//!
//! ```text
//! experiments <subcommand> [--scale <f64>] [--snapshots <n>]
//!
//!   fig3     merge-model confusion heat map (Figure 3)
//!   fig5a    per-snapshot operation mix for every dataset (Figure 5(a))
//!   fig5b    DBSCAN vs DynamicC re-clustering latency on Access (Figure 5(b))
//!   fig5c    DBSCAN vs DynamicC re-clustering latency on Road (Figure 5(c))
//!   fig5d    sqrt objective score for k-means on Road, all methods (Figure 5(d))
//!   fig5e    k-means re-clustering latency on Road (Figure 5(e))
//!   fig6     DB-index objective score on Cora/Music/Synthetic (Figure 6)
//!   fig7     DB-index re-clustering latency on Cora/Music/Synthetic (Figure 7)
//!   table2   pair-F1 per snapshot for DB-index clustering (Table 2)
//!   table3   precision/recall/purity/inverse purity at the final round (Table 3)
//!   table4   accuracy & recall of LR / SVM / DT vs #training samples (Table 4)
//!   table5   LR accuracy & recall vs training fraction (Table 5)
//!   summary  headline claims (latency saving vs Greedy, F1 gap vs batch)
//!   bench-serving  emit BENCH_dynamic_serving.json (ops/sec, comparisons,
//!                  aggregate-build counts per fixture scenario; --out <path>
//!                  overrides the output file)
//!   bench-durability  emit BENCH_durability.json (WAL append ops/sec,
//!                  checkpoint seconds, recovery vs full-replay seconds per
//!                  fixture scenario; --out <path> overrides the output file)
//!   bench-sharding  emit BENCH_sharding.json (wall-clock and ops/sec per
//!                  shard count in {1,2,4,8} in raw mode, merged structural
//!                  counters; --out <path> overrides the output file)
//!   bench-shard-quality  emit BENCH_shard_quality.json (pair P/R/F1 of the
//!                  sharded clustering vs the unsharded engine, before and
//!                  after cross-shard refinement, per shard count in
//!                  {1,2,4,8}; --out <path> overrides the output file)
//!   bench-pipeline  emit BENCH_pipeline.json (pipelined ingestion front-end
//!                  vs synchronous sharded serving: sustained ops/sec,
//!                  p50/p99 per-op commit latency, structural state match;
//!                  --out <path> overrides the output file)
//!   telemetry-smoke  serve the febrl fixture through the full durable
//!                  sharded stack with telemetry on and emit the example
//!                  metrics dump TELEMETRY_SMOKE.json (--out <path>
//!                  overrides the output file)
//!   lint     run the dc-lint workspace invariant gate against
//!                  LINT_BASELINE.json; exits non-zero on new findings
//!                  (see "Static analysis" in the README)
//!   all      everything above except the bench-* subcommands
//! ```
//!
//! Default scales are laptop-sized; `--scale` multiplies every dataset size
//! and `--snapshots` overrides the number of rounds (see EXPERIMENTS.md).
//!
//! `--telemetry <path>` works on every subcommand: it turns recording on
//! for the run and writes the final registry snapshot (the same stable JSON
//! layout as `TELEMETRY_SMOKE.json`) to `<path>` on exit.

use dc_bench::{DatasetFamily, MethodKind, Scenario, ScenarioConfig};
use dc_datagen::{DynamicWorkload, WorkloadConfig};
use dc_ml::{evaluate_at_threshold, recall_first_threshold, train_test_split, ModelKind};
use dc_types::OperationKind;

#[derive(Clone, Copy)]
struct Options {
    scale: f64,
    snapshots: Option<usize>,
}

fn parse_args() -> (String, Options, Option<String>, Option<String>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = "all".to_string();
    let mut out = None;
    let mut telemetry = None;
    let mut options = Options {
        scale: 1.0,
        snapshots: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                options.scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
                i += 1;
            }
            "--snapshots" => {
                options.snapshots = args.get(i + 1).and_then(|s| s.parse().ok());
                i += 1;
            }
            "--out" => {
                out = args.get(i + 1).cloned();
                i += 1;
            }
            "--telemetry" => {
                telemetry = args.get(i + 1).cloned();
                i += 1;
            }
            other if !other.starts_with("--") => command = other.to_string(),
            _ => {}
        }
        i += 1;
    }
    (command, options, out, telemetry)
}

// ---------------------------------------------------------------------------
// TELEMETRY_SMOKE.json
// ---------------------------------------------------------------------------
fn telemetry_smoke(out: Option<String>) {
    header("TELEMETRY: smoke run (train -> sharded durable serve -> crash -> recover)");
    let result = dc_bench::run_telemetry_smoke();
    println!(
        "served {} rounds / {} operations through {} shards; phase coverage {:.1}%",
        result.rounds,
        result.operations,
        dc_bench::telemetry::SMOKE_SHARDS,
        result.phase_coverage * 100.0,
    );
    println!(
        "captured {} counters, {} gauges, {} histograms",
        result.snapshot.counters.len(),
        result.snapshot.gauges.len(),
        result.snapshot.histograms.len(),
    );
    let path = out.unwrap_or_else(|| "TELEMETRY_SMOKE.json".to_string());
    std::fs::write(&path, result.to_json()).expect("write telemetry smoke output");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// BENCH_dynamic_serving.json
// ---------------------------------------------------------------------------
fn bench_serving(out: Option<String>) {
    header("BENCH: dynamic serving (incremental aggregates vs rebuild-per-delta)");
    let results = dc_bench::run_dynamic_serving_bench();
    println!(
        "{:<26} {:>6} {:>8} {:>12} {:>14} {:>12} {:>12}",
        "scenario", "rounds", "ops", "ops/sec", "ms/round", "agg builds", "slow builds"
    );
    for r in &results {
        println!(
            "{:<26} {:>6} {:>8} {:>12.1} {:>14.3} {:>12} {:>12}",
            r.name,
            r.rounds,
            r.operations,
            r.ops_per_sec(),
            r.mean_ms_per_round(),
            r.aggregate_full_builds,
            r.slow_path_full_builds,
        );
    }
    let path = out.unwrap_or_else(|| "BENCH_dynamic_serving.json".to_string());
    let json = dc_bench::serving_results_to_json(&results);
    std::fs::write(&path, json).expect("write serving bench output");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// BENCH_durability.json
// ---------------------------------------------------------------------------
fn bench_durability(out: Option<String>) {
    header("BENCH: durability (WAL append, checkpoint, recovery vs full replay)");
    let results = dc_bench::run_durability_bench();
    println!(
        "{:<26} {:>6} {:>8} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "scenario",
        "rounds",
        "ops",
        "append/sec",
        "ckpt(ms)",
        "recover(ms)",
        "replay(ms)",
        "speedup"
    );
    for r in &results {
        println!(
            "{:<26} {:>6} {:>8} {:>12.1} {:>10.3} {:>12.3} {:>12.3} {:>8.1}x",
            r.name,
            r.rounds,
            r.operations,
            r.wal_appends_per_sec(),
            r.checkpoint_seconds * 1e3,
            r.recovery_seconds * 1e3,
            r.full_replay_seconds * 1e3,
            r.recovery_speedup(),
        );
        assert!(
            r.recovery_matches,
            "{}: recovered state diverged from the pre-kill engine",
            r.name
        );
    }
    let path = out.unwrap_or_else(|| "BENCH_durability.json".to_string());
    let json = dc_bench::durability_results_to_json(&results);
    std::fs::write(&path, json).expect("write durability bench output");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// BENCH_sharding.json
// ---------------------------------------------------------------------------
fn bench_sharding(out: Option<String>) {
    header("BENCH: sharding (wall-clock scaling over shard counts)");
    let results = dc_bench::run_sharding_bench();
    for scenario in &results {
        println!(
            "-- {} ({} rounds, {} ops; unsharded engine {:.3}s)",
            scenario.name, scenario.rounds, scenario.operations, scenario.baseline_engine_seconds
        );
        println!(
            "{:>7} {:>10} {:>12} {:>9} {:>9} {:>10} {:>12}",
            "shards", "seconds", "ops/sec", "speedup", "clusters", "merges", "comparisons"
        );
        for run in &scenario.runs {
            println!(
                "{:>7} {:>10.3} {:>12.1} {:>8.2}x {:>9} {:>10} {:>12}",
                run.shards,
                run.seconds,
                run.ops_per_sec(scenario.operations),
                scenario.speedup(run.shards),
                run.clusters,
                run.merges_applied,
                run.comparisons,
            );
            assert_eq!(
                run.aggregate_full_builds, 0,
                "{}: {} shards fell off the incremental path",
                scenario.name, run.shards
            );
        }
    }
    let path = out.unwrap_or_else(|| "BENCH_sharding.json".to_string());
    let json = dc_bench::sharding_results_to_json(&results);
    std::fs::write(&path, json).expect("write sharding bench output");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// BENCH_pipeline.json
// ---------------------------------------------------------------------------
fn bench_pipeline(out: Option<String>) {
    header("BENCH: pipeline (pipelined ingestion vs synchronous serving)");
    let results = dc_bench::run_pipeline_bench();
    for scenario in &results {
        println!(
            "-- {} ({} shards, {} ops streamed as {}-op requests, pipelined target {} ops; states match: {})",
            scenario.name,
            scenario.shards,
            scenario.operations,
            scenario.granule_ops,
            scenario.batch_ops,
            scenario.states_match,
        );
        println!(
            "{:>10} {:>7} {:>10} {:>12} {:>14} {:>14} {:>9}",
            "mode", "rounds", "seconds", "ops/sec", "p50 op (µs)", "p99 op (µs)", "clusters"
        );
        for run in &scenario.runs {
            println!(
                "{:>10} {:>7} {:>10.3} {:>12.1} {:>14.1} {:>14.1} {:>9}",
                run.mode,
                run.rounds,
                run.seconds,
                run.ops_per_sec(scenario.operations),
                run.p50_op_latency_ns as f64 / 1e3,
                run.p99_op_latency_ns as f64 / 1e3,
                run.clusters,
            );
        }
        println!("   pipelined speedup vs sync: {:.2}x", scenario.speedup());
    }
    let path = out.unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let json = dc_bench::pipeline_results_to_json(&results);
    std::fs::write(&path, json).expect("write pipeline bench output");
    println!("wrote {path}");
}

// ---------------------------------------------------------------------------
// BENCH_shard_quality.json
// ---------------------------------------------------------------------------
fn bench_shard_quality(out: Option<String>) {
    header("BENCH: shard quality (sharded vs unsharded pair sets, pre/post refinement)");
    let results = dc_bench::run_shard_quality_bench();
    for scenario in &results {
        println!(
            "-- {} ({} rounds, {} ops)",
            scenario.name, scenario.rounds, scenario.operations
        );
        println!(
            "{:>7} {:>9} {:>9} {:>13} {:>12} {:>12} {:>12} {:>10}",
            "shards",
            "pre F1",
            "post F1",
            "pairs missing",
            "edges recov",
            "repair merges",
            "refined(s)",
            "raw(s)"
        );
        for run in &scenario.runs {
            println!(
                "{:>7} {:>9.6} {:>9.6} {:>6} -> {:>4} {:>12} {:>13} {:>12.3} {:>10.3}",
                run.shards,
                run.pre_f1,
                run.post_f1,
                run.pre_pairs_missing,
                run.post_pairs_missing,
                run.cross_edges_recovered,
                run.refine_merges_applied,
                run.seconds_refined,
                run.seconds_raw,
            );
            assert_eq!(
                (run.post_pairs_missing, run.post_pairs_extra),
                (0, 0),
                "{}: {} shards: refined pair sets diverged from the unsharded engine",
                scenario.name,
                run.shards
            );
        }
    }
    header("BENCH: refined serving throughput vs shard count (largest fixture)");
    let throughput = dc_bench::run_refined_throughput_bench();
    println!(
        "-- {} ({} rounds, {} ops)",
        throughput.name, throughput.rounds, throughput.operations
    );
    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>10} {:>13} {:>9} {:>12}",
        "shards",
        "repair",
        "seconds",
        "ops/sec",
        "clusters",
        "dirty total",
        "regions",
        "repair(ms)"
    );
    for run in &throughput.runs {
        println!(
            "{:>7} {:>12} {:>10.3} {:>12.1} {:>10} {:>13} {:>9} {:>12.3}",
            run.shards,
            if run.full_repair {
                "full"
            } else {
                "incremental"
            },
            run.seconds,
            throughput.operations as f64 / run.seconds,
            run.clusters,
            run.total_dirty_clusters,
            run.total_regions,
            run.repair_wall_ns_total as f64 * 1e-6,
        );
    }
    println!(
        "incremental repair speedup vs full repair at {} shards: {:.2}x",
        dc_bench::shard_quality::GATED_SHARD_COUNT,
        throughput.repair_speedup_vs_full(),
    );
    let path = out.unwrap_or_else(|| "BENCH_shard_quality.json".to_string());
    let json = dc_bench::shard_quality_results_to_json(&results, &throughput);
    std::fs::write(&path, json).expect("write shard quality bench output");
    println!("wrote {path}");
}

fn config_for(family: DatasetFamily, options: Options) -> ScenarioConfig {
    let mut config = ScenarioConfig::for_family(family);
    config.scale *= options.scale;
    if let Some(snapshots) = options.snapshots {
        config = config.scaled(config.scale, snapshots);
    }
    config
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

// ---------------------------------------------------------------------------
// Figure 3: merge-model confusion heat map
// ---------------------------------------------------------------------------
fn fig3(options: Options) {
    header("Figure 3: heatmap of merge-model prediction performance (Cora-like)");
    let config = config_for(DatasetFamily::Cora, options);
    let scenario = Scenario::prepare(config);
    // Evaluate the trained model on the last served round (held out from the
    // perspective of where the model's training data mostly came from).
    let serve_start = config.train_rounds;
    let snapshots = &scenario.workload.snapshots;
    if snapshots.len() <= serve_start {
        println!("not enough snapshots to evaluate");
        return;
    }
    // Rebuild the graph as of the end of the previous round.
    let mut graph = dc_similarity::SimilarityGraph::build(
        config.family.graph_config(),
        &scenario.workload.initial,
    );
    for snapshot in &snapshots[..serve_start] {
        graph.apply_batch(&snapshot.batch);
    }
    let snapshot = &snapshots[serve_start];
    graph.apply_batch(&snapshot.batch);
    let confusion = scenario.trained_dynamicc().merge_confusion_on_round(
        &graph,
        scenario.batch_clustering(serve_start),
        &snapshot.batch,
        scenario.batch_clustering(serve_start + 1),
    );
    println!("{confusion}");
    println!(
        "accuracy={:.3}  precision={:.3}  recall={:.3}",
        confusion.accuracy(),
        confusion.precision(),
        confusion.recall()
    );
}

// ---------------------------------------------------------------------------
// Figure 5(a): workload composition
// ---------------------------------------------------------------------------
fn fig5a(options: Options) {
    header("Figure 5(a): operations per snapshot (percent of live objects)");
    for family in DatasetFamily::all() {
        let config = config_for(family, options);
        let full = family.generate(config.scale);
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                snapshots: config.snapshots,
                seed: config.seed,
                ..WorkloadConfig::default()
            },
        );
        println!("-- {} ({} objects total)", family.name(), full.len());
        println!("snapshot   add%   remove%   update%");
        let mut live = workload.initial.len();
        for snapshot in &workload.snapshots {
            let stats = snapshot.stats();
            println!(
                "{:>8} {:>6.1} {:>9.1} {:>9.1}",
                snapshot.index,
                stats.percentage(OperationKind::Add, live),
                stats.percentage(OperationKind::Remove, live),
                stats.percentage(OperationKind::Update, live),
            );
            live = live + stats.adds - stats.removes;
        }
    }
}

// ---------------------------------------------------------------------------
// Figures 5(b)/5(c): DBSCAN vs DynamicC latency
// ---------------------------------------------------------------------------
fn fig5_density(family: DatasetFamily, label: &str, options: Options) {
    header(label);
    let mut config = config_for(family, options);
    // Both density figures use DBSCAN regardless of the family default.
    config.task = Some(dc_bench::scenario::ClusteringTask::Density { min_pts: 3 });
    let scenario = Scenario::prepare(config);
    let batch = scenario.batch_summary();
    let dynamicc = scenario.run_method(MethodKind::DynamicCDynamicSet);
    println!("objects   DBSCAN(ms)   DynamicC(ms)   DynamicC F1 vs DBSCAN");
    for (b, d) in batch.rounds.iter().zip(&dynamicc.rounds) {
        println!(
            "{:>7} {:>12.2} {:>14.2} {:>12.3}",
            b.objects,
            b.seconds * 1e3,
            d.seconds * 1e3,
            d.vs_batch.f1
        );
    }
    println!(
        "mean: DBSCAN {:.2} ms, DynamicC {:.2} ms, mean F1 {:.3}",
        batch.mean_seconds() * 1e3,
        dynamicc.mean_seconds() * 1e3,
        dynamicc.mean_f1()
    );
}

// ---------------------------------------------------------------------------
// Figures 5(d)/5(e): k-means on Road
// ---------------------------------------------------------------------------
fn fig5_kmeans(options: Options) {
    header("Figure 5(d): sqrt objective score for k-means clustering (Access-like numeric data)");
    let config = config_for(DatasetFamily::Access, options);
    let scenario = Scenario::prepare(config);
    let methods = [
        MethodKind::Naive,
        MethodKind::Greedy,
        MethodKind::DynamicCGreedySet,
        MethodKind::DynamicCDynamicSet,
    ];
    let batch_scores = scenario.batch_objective_scores();
    let mut summaries = Vec::new();
    for m in methods {
        summaries.push(scenario.run_method(m));
    }
    println!(
        "round   objects   Hill-climbing {}",
        methods.map(|m| m.name()).join(" ")
    );
    for (i, batch_score) in batch_scores.iter().enumerate() {
        let mut row = format!(
            "{:>5} {:>9} {:>14.2}",
            summaries[0].rounds[i].snapshot_index,
            summaries[0].rounds[i].objects,
            batch_score.sqrt()
        );
        for s in &summaries {
            row.push_str(&format!(" {:>12.2}", s.rounds[i].objective_score.sqrt()));
        }
        println!("{row}");
    }

    header("Figure 5(e): k-means re-clustering latency (ms)");
    let batch = scenario.batch_summary();
    println!("round   objects   Hill-climbing   Naive   Greedy   DynamicC");
    for i in 0..batch.rounds.len() {
        println!(
            "{:>5} {:>9} {:>14.2} {:>8.2} {:>8.2} {:>9.2}",
            batch.rounds[i].snapshot_index,
            batch.rounds[i].objects,
            batch.rounds[i].seconds * 1e3,
            summaries[0].rounds[i].seconds * 1e3,
            summaries[1].rounds[i].seconds * 1e3,
            summaries[3].rounds[i].seconds * 1e3,
        );
    }
}

// ---------------------------------------------------------------------------
// Figures 6 / 7 and Tables 2 / 3: DB-index clustering on the textual families
// ---------------------------------------------------------------------------
fn dbindex_families() -> [DatasetFamily; 3] {
    [
        DatasetFamily::Cora,
        DatasetFamily::Music,
        DatasetFamily::Synthetic,
    ]
}

fn fig6_fig7_tables(
    options: Options,
    show_fig6: bool,
    show_fig7: bool,
    show_t2: bool,
    show_t3: bool,
) {
    let methods = [
        MethodKind::Naive,
        MethodKind::Greedy,
        MethodKind::DynamicCGreedySet,
        MethodKind::DynamicCDynamicSet,
    ];
    for family in dbindex_families() {
        let config = config_for(family, options);
        let scenario = Scenario::prepare(config);
        let batch = scenario.batch_summary();
        let batch_scores = scenario.batch_objective_scores();
        let summaries: Vec<_> = methods.iter().map(|&m| scenario.run_method(m)).collect();

        if show_fig6 {
            header(&format!(
                "Figure 6: DB-index objective score on {} (lower is better)",
                family.name()
            ));
            println!(
                "round   objects   Hill-climbing   Naive    Greedy   DynC(GreedySet)   DynC(DynamicSet)"
            );
            for (i, batch_score) in batch_scores.iter().enumerate() {
                println!(
                    "{:>5} {:>9} {:>14.4} {:>8.4} {:>9.4} {:>17.4} {:>18.4}",
                    summaries[0].rounds[i].snapshot_index,
                    summaries[0].rounds[i].objects,
                    batch_score,
                    summaries[0].rounds[i].objective_score,
                    summaries[1].rounds[i].objective_score,
                    summaries[2].rounds[i].objective_score,
                    summaries[3].rounds[i].objective_score,
                );
            }
        }
        if show_fig7 {
            header(&format!(
                "Figure 7: re-clustering latency on {} (ms per round)",
                family.name()
            ));
            println!("round   objects   Hill-climbing   Naive    Greedy   DynamicC");
            for i in 0..batch.rounds.len() {
                println!(
                    "{:>5} {:>9} {:>14.2} {:>8.2} {:>9.2} {:>10.2}",
                    batch.rounds[i].snapshot_index,
                    batch.rounds[i].objects,
                    batch.rounds[i].seconds * 1e3,
                    summaries[0].rounds[i].seconds * 1e3,
                    summaries[1].rounds[i].seconds * 1e3,
                    summaries[3].rounds[i].seconds * 1e3,
                );
            }
        }
        if show_t2 {
            header(&format!(
                "Table 2: pair-F1 vs the batch result per snapshot on {}",
                family.name()
            ));
            println!(
                "method               {}",
                summaries[0]
                    .rounds
                    .iter()
                    .map(|r| format!("snap{:>2}", r.snapshot_index))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            for (name, idx) in [("Naive", 0usize), ("Greedy", 1), ("DynamicC", 3)] {
                let row: Vec<String> = summaries[idx]
                    .rounds
                    .iter()
                    .map(|r| format!("{:.3}", r.vs_batch.f1))
                    .collect();
                println!("{name:<20} {}", row.join("  "));
            }
        }
        if show_t3 {
            header(&format!(
                "Table 3: final-round quality vs the batch result on {}",
                family.name()
            ));
            println!("method               precision   recall   purity   inverse-purity");
            for (name, idx) in [("Naive", 0usize), ("Greedy", 1), ("DynamicC", 3)] {
                if let Some(q) = summaries[idx].final_quality() {
                    println!(
                        "{name:<20} {:>9.3} {:>8.3} {:>8.3} {:>16.3}",
                        q.precision, q.recall, q.purity, q.inverse_purity
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tables 4 / 5: ML model evaluation
// ---------------------------------------------------------------------------
fn table4(options: Options) {
    header("Table 4: accuracy and recall of different ML models vs #training samples (Cora-like)");
    let config = config_for(DatasetFamily::Cora, options);
    let scenario = Scenario::prepare(config);
    let (xs, ys) = scenario.trained_dynamicc().models().merge_training_data();
    if xs.len() < 10 {
        println!("not enough training data collected ({} samples)", xs.len());
        return;
    }
    let sizes = [
        xs.len() / 8,
        xs.len() / 4,
        xs.len() / 2,
        xs.len() * 3 / 4,
        xs.len(),
    ];
    println!("model                 samples   accuracy   recall");
    for kind in ModelKind::all() {
        for &n in &sizes {
            let n = n.max(4).min(xs.len());
            let (train_x, train_y, test_x, test_y) = train_test_split(&xs[..n], &ys[..n], 0.75, 11);
            let mut model = kind.build();
            model.fit(&train_x, &train_y);
            let theta = recall_first_threshold(model.as_ref(), &train_x, &train_y);
            let (ex, ey) = if test_x.is_empty() {
                (&train_x, &train_y)
            } else {
                (&test_x, &test_y)
            };
            let m = evaluate_at_threshold(model.as_ref(), ex, ey, theta);
            println!(
                "{:<21} {:>7} {:>10.2} {:>8.2}",
                kind.to_string(),
                n,
                m.accuracy(),
                m.recall()
            );
        }
    }
}

fn table5(options: Options) {
    header("Table 5: logistic regression accuracy and recall vs fraction of training samples");
    for family in dbindex_families() {
        let config = config_for(family, options);
        let scenario = Scenario::prepare(config);
        let (xs, ys) = scenario.trained_dynamicc().models().merge_training_data();
        if xs.len() < 10 {
            println!("{}: not enough training data", family.name());
            continue;
        }
        println!("-- {} ({} buffered samples)", family.name(), xs.len());
        println!("fraction   accuracy   recall");
        for fraction in [0.05, 0.1, 0.2, 0.4, 0.8] {
            let (train_x, train_y, test_x, test_y) = train_test_split(&xs, &ys, fraction, 5);
            let mut model = ModelKind::LogisticRegression.build();
            model.fit(&train_x, &train_y);
            let theta = if train_x.is_empty() {
                0.5
            } else {
                recall_first_threshold(model.as_ref(), &train_x, &train_y)
            };
            let m = evaluate_at_threshold(model.as_ref(), &test_x, &test_y, theta);
            println!(
                "{:>8.2} {:>10.2} {:>8.2}",
                fraction,
                m.accuracy(),
                m.recall()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Headline summary
// ---------------------------------------------------------------------------
fn summary(options: Options) {
    header("Headline claims (cf. abstract: ~85% faster than Greedy, within ~2% F1 of batch)");
    println!("dataset      method                mean ms/round   mean F1 vs batch");
    for family in dbindex_families() {
        let config = config_for(family, options);
        let scenario = Scenario::prepare(config);
        let greedy = scenario.run_method(MethodKind::Greedy);
        let dynamicc = scenario.run_method(MethodKind::DynamicCDynamicSet);
        let naive = scenario.run_method(MethodKind::Naive);
        for s in [&naive, &greedy, &dynamicc] {
            println!(
                "{:<12} {:<22} {:>12.2} {:>18.3}",
                family.name(),
                s.method,
                s.mean_seconds() * 1e3,
                s.mean_f1()
            );
        }
        let saving = if greedy.mean_seconds() > 0.0 {
            100.0 * (1.0 - dynamicc.mean_seconds() / greedy.mean_seconds())
        } else {
            0.0
        };
        println!(
            "{:<12} DynamicC saves {:.0}% of Greedy's per-round latency; F1 gap to batch = {:.1}%",
            family.name(),
            saving,
            100.0 * (1.0 - dynamicc.mean_f1())
        );
    }
}

/// Run the dc-lint workspace gate (`LINT_BASELINE.json` ratchet) and exit
/// non-zero on any finding that is not grandfathered.
fn lint() {
    let cwd = std::env::current_dir().expect("current directory");
    let Some(root) = dc_lint::discover_root(&cwd) else {
        eprintln!(
            "experiments lint: no workspace root found above {}",
            cwd.display()
        );
        std::process::exit(2);
    };
    match dc_lint::run_gate(&root) {
        Ok(report) => println!("{report}"),
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let (command, options, out, telemetry) = parse_args();
    if telemetry.is_some() {
        dc_telemetry::TelemetryConfig::enabled().apply();
    }
    match command.as_str() {
        "bench-serving" => bench_serving(out),
        "bench-durability" => bench_durability(out),
        "bench-sharding" => bench_sharding(out),
        "bench-shard-quality" => bench_shard_quality(out),
        "bench-pipeline" => bench_pipeline(out),
        "telemetry-smoke" => telemetry_smoke(out),
        "lint" => lint(),
        "fig3" => fig3(options),
        "fig5a" => fig5a(options),
        "fig5b" => fig5_density(
            DatasetFamily::Access,
            "Figure 5(b): DBSCAN vs DynamicC latency on Access-like data",
            options,
        ),
        "fig5c" => fig5_density(
            DatasetFamily::Road,
            "Figure 5(c): DBSCAN vs DynamicC latency on Road-like data",
            options,
        ),
        "fig5d" | "fig5e" => fig5_kmeans(options),
        "fig6" => fig6_fig7_tables(options, true, false, false, false),
        "fig7" => fig6_fig7_tables(options, false, true, false, false),
        "table2" => fig6_fig7_tables(options, false, false, true, false),
        "table3" => fig6_fig7_tables(options, false, false, false, true),
        "table4" => table4(options),
        "table5" => table5(options),
        "summary" => summary(options),
        "all" => {
            fig5a(options);
            fig3(options);
            fig5_density(
                DatasetFamily::Access,
                "Figure 5(b): DBSCAN vs DynamicC latency on Access-like data",
                options,
            );
            fig5_density(
                DatasetFamily::Road,
                "Figure 5(c): DBSCAN vs DynamicC latency on Road-like data",
                options,
            );
            fig5_kmeans(options);
            fig6_fig7_tables(options, true, true, true, true);
            table4(options);
            table5(options);
            summary(options);
        }
        other => {
            eprintln!("unknown experiment '{other}'; see the module docs for the list");
            std::process::exit(2);
        }
    }
    if let Some(path) = telemetry {
        let json = dc_telemetry::registry().snapshot().to_json();
        std::fs::write(&path, json).expect("write telemetry output");
        println!("wrote telemetry snapshot to {path}");
    }
}
