//! Shared experiment machinery: dataset families, clustering tasks, and the
//! replay loop that drives every method over the same dynamic workload.

use dc_baselines::{Greedy, IncrementalClusterer, Naive, NaiveConfig};
use dc_batch::{BatchClusterer, Dbscan, DbscanConfig, HillClimbing, HillClimbingConfig};
use dc_core::{train_on_workload, DynamicC};
use dc_datagen::{
    AccessLikeGenerator, CoraLikeGenerator, DynamicWorkload, FebrlLikeGenerator,
    MusicLikeGenerator, RoadLikeGenerator, WorkloadConfig,
};
use dc_eval::{quality_report, QualityReport};
use dc_objective::{DbIndexObjective, DensityObjective, KMeansObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, SimilarityGraph};
use dc_types::{Clustering, Dataset};
use std::sync::Arc;

/// The five dataset families of Table 1 (each a synthetic stand-in, see
/// DESIGN.md for the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFamily {
    /// Cora-like citation records (textual, Jaccard).
    Cora,
    /// MusicBrainz-like song records (textual, trigram cosine).
    Music,
    /// Amazon-Access-like numeric vectors (Euclidean).
    Access,
    /// 3D-Road-Network-like spatial points (Euclidean).
    Road,
    /// Febrl-like synthetic person records (Levenshtein + Jaccard).
    Synthetic,
}

impl DatasetFamily {
    /// All families, in the order the paper lists them.
    pub fn all() -> [DatasetFamily; 5] {
        [
            DatasetFamily::Cora,
            DatasetFamily::Music,
            DatasetFamily::Access,
            DatasetFamily::Road,
            DatasetFamily::Synthetic,
        ]
    }

    /// Display name matching the paper's shorthand.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetFamily::Cora => "Cora",
            DatasetFamily::Music => "Music",
            DatasetFamily::Access => "Access",
            DatasetFamily::Road => "Road",
            DatasetFamily::Synthetic => "Synthetic",
        }
    }

    /// Generate the full dataset at a relative scale (1.0 = the laptop-scale
    /// default documented in EXPERIMENTS.md).
    pub fn generate(&self, scale: f64) -> Dataset {
        let s = |base: usize| ((base as f64 * scale).round() as usize).max(4);
        match self {
            DatasetFamily::Cora => CoraLikeGenerator {
                entities: s(120),
                duplicates_per_entity: 6.0,
                ..CoraLikeGenerator::default()
            }
            .generate(),
            DatasetFamily::Music => MusicLikeGenerator {
                entities: s(250),
                duplicates_per_entity: 2.5,
                ..MusicLikeGenerator::default()
            }
            .generate(),
            DatasetFamily::Access => AccessLikeGenerator {
                clusters: s(16),
                points_per_cluster: 40,
                ..AccessLikeGenerator::default()
            }
            .generate(),
            DatasetFamily::Road => RoadLikeGenerator {
                roads: s(40),
                points_per_road: 30,
                ..RoadLikeGenerator::default()
            }
            .generate(),
            DatasetFamily::Synthetic => FebrlLikeGenerator {
                originals: s(220),
                duplicates_per_original: 1.8,
                ..FebrlLikeGenerator::default()
            }
            .generate(),
        }
    }

    /// A fresh similarity-graph configuration for this family (graph configs
    /// own boxed strategies and therefore cannot be cloned).
    pub fn graph_config(&self) -> GraphConfig {
        match self {
            DatasetFamily::Cora => GraphConfig::textual_jaccard(0.5),
            DatasetFamily::Music => GraphConfig::textual_trigram(0.65),
            DatasetFamily::Access => GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            DatasetFamily::Road => GraphConfig::numeric_euclidean(0.6, 1.5, 3, 0.25),
            DatasetFamily::Synthetic => GraphConfig::textual_febrl(0.6),
        }
    }

    /// The clustering task the paper evaluates on this family.
    pub fn default_task(&self) -> ClusteringTask {
        match self {
            DatasetFamily::Cora | DatasetFamily::Music | DatasetFamily::Synthetic => {
                ClusteringTask::DbIndex
            }
            DatasetFamily::Access => ClusteringTask::KMeans { k: 16 },
            DatasetFamily::Road => ClusteringTask::Density { min_pts: 3 },
        }
    }

    /// Number of snapshots the paper uses for this family.
    pub fn default_snapshots(&self) -> usize {
        match self {
            DatasetFamily::Cora | DatasetFamily::Synthetic => 8,
            _ => 10,
        }
    }
}

/// Which clustering problem is being solved (§7.1 evaluates three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusteringTask {
    /// DB-index clustering driven by hill-climbing.
    DbIndex,
    /// k-means clustering driven by hill-climbing with fixed `k`.
    KMeans {
        /// Number of clusters.
        k: usize,
    },
    /// Density-based clustering driven by DBSCAN.
    Density {
        /// Core-point neighbour threshold.
        min_pts: usize,
    },
}

impl ClusteringTask {
    /// The verification / search objective for this task.
    pub fn objective(&self) -> Arc<dyn ObjectiveFunction> {
        match self {
            ClusteringTask::DbIndex => Arc::new(DbIndexObjective),
            ClusteringTask::KMeans { .. } => Arc::new(KMeansObjective),
            ClusteringTask::Density { min_pts } => Arc::new(DensityObjective::new(*min_pts)),
        }
    }

    /// The batch algorithm for this task.
    pub fn batch(&self) -> Box<dyn BatchClusterer> {
        match self {
            ClusteringTask::DbIndex => {
                Box::new(HillClimbing::with_objective(Arc::new(DbIndexObjective)))
            }
            ClusteringTask::KMeans { k } => Box::new(HillClimbing::new(
                Arc::new(KMeansObjective),
                HillClimbingConfig {
                    fixed_k: Some(*k),
                    ..HillClimbingConfig::default()
                },
            )),
            ClusteringTask::Density { min_pts } => {
                Box::new(Dbscan::new(DbscanConfig { min_pts: *min_pts }))
            }
        }
    }

    /// Task name for report rows.
    pub fn name(&self) -> &'static str {
        match self {
            ClusteringTask::DbIndex => "db-index",
            ClusteringTask::KMeans { .. } => "k-means",
            ClusteringTask::Density { .. } => "dbscan",
        }
    }
}

/// The dynamic methods compared in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Closest-cluster assignment baseline.
    Naive,
    /// Gruenheid et al. incremental baseline.
    Greedy,
    /// DynamicC starting each round from the batch reference of the previous
    /// round (the paper's GreedySet scenario).
    DynamicCGreedySet,
    /// DynamicC starting each round from its own previous output (the
    /// paper's DynamicSet scenario — the realistic deployment).
    DynamicCDynamicSet,
}

impl MethodKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Naive => "Naive",
            MethodKind::Greedy => "Greedy",
            MethodKind::DynamicCGreedySet => "DynamicC(GreedySet)",
            MethodKind::DynamicCDynamicSet => "DynamicC(DynamicSet)",
        }
    }
}

/// Scenario parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Dataset family.
    pub family: DatasetFamily,
    /// Clustering task override (`None` ⇒ the family default).
    pub task: Option<ClusteringTask>,
    /// Relative dataset scale (1.0 = laptop-scale default).
    pub scale: f64,
    /// Number of snapshots (0 ⇒ the family default).
    pub snapshots: usize,
    /// How many leading snapshots are used to train DynamicC (it serves the
    /// remaining ones).
    pub train_rounds: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// Default scenario for a family.
    pub fn for_family(family: DatasetFamily) -> Self {
        ScenarioConfig {
            family,
            task: None,
            scale: 1.0,
            snapshots: family.default_snapshots(),
            train_rounds: 3,
            seed: 0xBE9C,
        }
    }

    /// Shrink the scenario (used by the Criterion benches and smoke tests).
    pub fn scaled(mut self, scale: f64, snapshots: usize) -> Self {
        self.scale = scale;
        self.snapshots = snapshots;
        self.train_rounds = self.train_rounds.min(snapshots.saturating_sub(1)).max(1);
        self
    }
}

/// The timing/quality record of one served round.
#[derive(Debug, Clone)]
pub struct RoundResult {
    /// 1-based snapshot index.
    pub snapshot_index: usize,
    /// Number of live objects after the round.
    pub objects: usize,
    /// Wall-clock seconds the method needed for the round (for DynamicC this
    /// includes any retraining done in the round, as in the paper).
    pub seconds: f64,
    /// Objective score of the produced clustering.
    pub objective_score: f64,
    /// Quality against the batch reference clustering of the same round.
    pub vs_batch: QualityReport,
}

/// All rounds of one method on one scenario.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Method name.
    pub method: String,
    /// Per-round results for the *served* snapshots (after training rounds).
    pub rounds: Vec<RoundResult>,
}

impl RunSummary {
    /// Mean per-round latency in seconds.
    pub fn mean_seconds(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.seconds).sum::<f64>() / self.rounds.len() as f64
    }

    /// Mean pair-F1 against the batch reference.
    pub fn mean_f1(&self) -> f64 {
        if self.rounds.is_empty() {
            return 0.0;
        }
        self.rounds.iter().map(|r| r.vs_batch.f1).sum::<f64>() / self.rounds.len() as f64
    }

    /// Final-round quality report (for Table 3).
    pub fn final_quality(&self) -> Option<&QualityReport> {
        self.rounds.last().map(|r| &r.vs_batch)
    }
}

/// A fully materialized experiment scenario: the dataset, the workload, the
/// batch reference clusterings for every snapshot, and the trained DynamicC
/// models.
pub struct Scenario {
    /// The configuration used to build the scenario.
    pub config: ScenarioConfig,
    /// The clustering task.
    pub task: ClusteringTask,
    /// The generated workload.
    pub workload: DynamicWorkload,
    objective: Arc<dyn ObjectiveFunction>,
    /// Batch reference clusterings: index 0 = initial data, index i = after
    /// snapshot i.
    batch_reference: Vec<Clustering>,
    /// Wall-clock seconds of the batch algorithm per snapshot (aligned with
    /// `batch_reference[1..]`).
    batch_seconds: Vec<f64>,
    /// Live-object counts after each snapshot.
    object_counts: Vec<usize>,
    /// DynamicC trained on the first `train_rounds` snapshots.
    trained: DynamicC,
}

impl Scenario {
    /// Build a scenario: generate the data and workload, run the batch
    /// algorithm for every snapshot (the reference), and train DynamicC on
    /// the first `train_rounds` snapshots.
    pub fn prepare(config: ScenarioConfig) -> Self {
        let task = config.task.unwrap_or_else(|| config.family.default_task());
        let objective = task.objective();
        let batch = task.batch();

        let full = config.family.generate(config.scale);
        let workload = DynamicWorkload::generate(
            &full,
            WorkloadConfig {
                snapshots: config.snapshots,
                seed: config.seed,
                ..WorkloadConfig::default()
            },
        );

        // Batch reference over every snapshot.
        let mut graph = SimilarityGraph::build(config.family.graph_config(), &workload.initial);
        let initial_clustering = batch.cluster(&graph).clustering;
        let mut batch_reference = vec![initial_clustering.clone()];
        let mut batch_seconds = Vec::new();
        let mut object_counts = Vec::new();

        // Train DynamicC while producing the reference for the training
        // prefix (train_on_workload runs the same batch algorithm).
        let mut trained = DynamicC::with_objective(objective.clone());
        let train_rounds = config.train_rounds.min(workload.snapshots.len());
        let (train_snaps, serve_snaps) = workload.snapshots.split_at(train_rounds);
        let report = train_on_workload(
            &mut trained,
            &mut graph,
            &initial_clustering,
            train_snaps,
            batch.as_ref(),
        );
        for round in &report.rounds {
            batch_reference.push(round.batch_clustering.clone());
            batch_seconds.push(round.batch_seconds);
            object_counts.push(round.batch_clustering.object_count());
        }

        // Continue the batch reference over the served snapshots.
        let mut previous = batch_reference
            .last()
            .expect("at least the initial")
            .clone();
        for snapshot in serve_snaps {
            graph.apply_batch(&snapshot.batch);
            let span = dc_telemetry::registry().span("bench.scenario.batch_recluster");
            let outcome = batch.recluster(&graph, &previous);
            batch_seconds.push(span.finish_ns() as f64 / 1e9);
            object_counts.push(outcome.clustering.object_count());
            batch_reference.push(outcome.clustering.clone());
            previous = outcome.clustering;
        }

        Scenario {
            config,
            task,
            workload,
            objective,
            batch_reference,
            batch_seconds,
            object_counts,
            trained,
        }
    }

    /// The objective used by this scenario.
    pub fn objective(&self) -> &Arc<dyn ObjectiveFunction> {
        &self.objective
    }

    /// The trained DynamicC instance (for the ML-evaluation experiments).
    pub fn trained_dynamicc(&self) -> &DynamicC {
        &self.trained
    }

    /// Batch reference clustering after snapshot `i` (1-based; 0 = initial).
    pub fn batch_clustering(&self, i: usize) -> &Clustering {
        &self.batch_reference[i]
    }

    /// Per-snapshot batch latency and object counts, as a [`RunSummary`]
    /// covering the served snapshots (so it lines up with the other methods).
    pub fn batch_summary(&self) -> RunSummary {
        let serve_start = self.config.train_rounds.min(self.workload.snapshots.len());
        let rounds = (serve_start..self.workload.snapshots.len())
            .map(|i| RoundResult {
                snapshot_index: i + 1,
                objects: self.object_counts[i],
                seconds: self.batch_seconds[i],
                objective_score: 0.0,
                vs_batch: QualityReport {
                    precision: 1.0,
                    recall: 1.0,
                    f1: 1.0,
                    purity: 1.0,
                    inverse_purity: 1.0,
                },
            })
            .collect();
        RunSummary {
            method: match self.task {
                ClusteringTask::Density { .. } => "DBSCAN".to_string(),
                _ => "Hill-climbing".to_string(),
            },
            rounds,
        }
    }

    /// Replay the served snapshots through one method and measure it.
    pub fn run_method(&self, method: MethodKind) -> RunSummary {
        let serve_start = self.config.train_rounds.min(self.workload.snapshots.len());

        // Rebuild the graph state as of the end of the training prefix.
        let mut graph =
            SimilarityGraph::build(self.config.family.graph_config(), &self.workload.initial);
        for snapshot in &self.workload.snapshots[..serve_start] {
            graph.apply_batch(&snapshot.batch);
        }

        let mut method_impl: Box<dyn IncrementalClusterer> = match method {
            MethodKind::Naive => Box::new(Naive::new(NaiveConfig {
                join_threshold: 0.4,
            })),
            MethodKind::Greedy => Box::new(Greedy::with_objective(self.objective.clone())),
            MethodKind::DynamicCGreedySet | MethodKind::DynamicCDynamicSet => {
                // Serve with a fresh DynamicC that shares the trained models'
                // configuration and buffers by re-training a clone of the
                // buffers: the cheapest faithful way is to rebuild from the
                // same observations, which `Scenario::prepare` already did —
                // so here we simply reuse the trained instance's snapshot by
                // re-running its training quickly.
                Box::new(self.fresh_trained_dynamicc())
            }
        };

        let mut own_previous = self.batch_reference[serve_start].clone();
        let mut rounds = Vec::new();
        for (offset, snapshot) in self.workload.snapshots[serve_start..].iter().enumerate() {
            let round_index = serve_start + offset;
            let previous = match method {
                MethodKind::DynamicCDynamicSet => own_previous.clone(),
                // Naive and Greedy, like DynamicC(GreedySet), start from the
                // reference clustering of the previous round.
                _ => self.batch_reference[round_index].clone(),
            };
            graph.apply_batch(&snapshot.batch);
            let span = dc_telemetry::registry().span("bench.scenario.method_recluster");
            let produced = method_impl.recluster(&graph, &previous, &snapshot.batch);
            let seconds = span.finish_ns() as f64 / 1e9;
            let reference = &self.batch_reference[round_index + 1];
            rounds.push(RoundResult {
                snapshot_index: snapshot.index,
                objects: produced.object_count(),
                seconds,
                objective_score: self.objective.evaluate(&graph, &produced),
                vs_batch: quality_report(&produced, reference),
            });
            own_previous = produced;
        }
        RunSummary {
            method: method.name().to_string(),
            rounds,
        }
    }

    /// Objective score of the batch reference for each served round (used by
    /// the quality figures, which plot all methods plus the batch).
    pub fn batch_objective_scores(&self) -> Vec<f64> {
        let serve_start = self.config.train_rounds.min(self.workload.snapshots.len());
        let mut graph =
            SimilarityGraph::build(self.config.family.graph_config(), &self.workload.initial);
        for snapshot in &self.workload.snapshots[..serve_start] {
            graph.apply_batch(&snapshot.batch);
        }
        let mut scores = Vec::new();
        for (offset, snapshot) in self.workload.snapshots[serve_start..].iter().enumerate() {
            graph.apply_batch(&snapshot.batch);
            let reference = &self.batch_reference[serve_start + offset + 1];
            scores.push(self.objective.evaluate(&graph, reference));
        }
        scores
    }

    /// Rebuild a trained DynamicC equivalent to the one produced during
    /// `prepare` (same observations, same configuration).  DynamicC is
    /// deliberately not `Clone` (it owns boxed models), so serving runs and
    /// benches re-derive it from the recorded batch reference, which is
    /// cheap relative to a batch round.
    pub fn fresh_trained_dynamicc(&self) -> DynamicC {
        let mut fresh = DynamicC::with_objective(self.objective.clone());
        let train_rounds = self.config.train_rounds.min(self.workload.snapshots.len());
        let mut graph =
            SimilarityGraph::build(self.config.family.graph_config(), &self.workload.initial);
        for (i, snapshot) in self.workload.snapshots[..train_rounds].iter().enumerate() {
            graph.apply_batch(&snapshot.batch);
            fresh.observe_round(
                &graph,
                &self.batch_reference[i],
                &snapshot.batch,
                &self.batch_reference[i + 1],
            );
        }
        fresh.retrain();
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny end-to-end scenario exercising every method; this doubles as
    /// the smoke test for the experiment harness.
    #[test]
    fn tiny_synthetic_scenario_runs_every_method() {
        let mut config = ScenarioConfig::for_family(DatasetFamily::Synthetic).scaled(0.12, 4);
        config.train_rounds = 2;
        let served_rounds = config.snapshots - config.train_rounds;
        let scenario = Scenario::prepare(config);
        assert_eq!(scenario.workload.snapshots.len(), 4);
        assert!(scenario.trained_dynamicc().is_trained());

        let batch = scenario.batch_summary();
        assert_eq!(batch.rounds.len(), served_rounds);

        for method in [
            MethodKind::Naive,
            MethodKind::Greedy,
            MethodKind::DynamicCGreedySet,
            MethodKind::DynamicCDynamicSet,
        ] {
            let summary = scenario.run_method(method);
            assert_eq!(summary.rounds.len(), served_rounds, "{}", method.name());
            assert!(summary.mean_seconds() >= 0.0);
            let f1 = summary.mean_f1();
            assert!((0.0..=1.0).contains(&f1), "{} f1={f1}", method.name());
            if matches!(
                method,
                MethodKind::Greedy | MethodKind::DynamicCGreedySet | MethodKind::DynamicCDynamicSet
            ) {
                assert!(f1 > 0.6, "{} f1 too low: {f1}", method.name());
            }
        }
        assert_eq!(scenario.batch_objective_scores().len(), served_rounds);
    }

    #[test]
    fn family_metadata_is_consistent() {
        for family in DatasetFamily::all() {
            assert!(!family.name().is_empty());
            assert!(family.default_snapshots() >= 8);
            let task = family.default_task();
            assert!(!task.name().is_empty());
            let _ = task.objective();
        }
        assert_eq!(MethodKind::DynamicCGreedySet.name(), "DynamicC(GreedySet)");
    }
}
