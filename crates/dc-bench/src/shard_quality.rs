//! The `BENCH_shard_quality` baseline: pair-level quality of sharded vs
//! unsharded serving, before and after cross-shard refinement.
//!
//! The experiments binary (`experiments bench-shard-quality`) serializes
//! [`run_shard_quality_bench`]'s results to `BENCH_shard_quality.json`.
//! Each scenario serves the identical fixture workload through
//!
//! * an unsharded [`Engine`] (the quality reference),
//! * a **refined** [`ShardedEngine`] (the default mode: boundary pair
//!   exchange + global merge repair after every round), and
//! * a **raw** [`ShardedEngine::new_raw`] (the pre-refinement semantics:
//!   cross-shard edges silently dropped),
//!
//! at every shard count in {1, 2, 4, 8}, and reports pair
//! precision/recall/F1 of both sharded clusterings against the unsharded
//! engine's after the final round, the recovered-edge and boundary-pair
//! counters, and the wall-clock of both modes (the measured price of
//! quality-exact sharding).
//!
//! The acceptance gates of the refinement issues, enforced by this module's
//! tests: at N ∈ {2, 4} on both fixture families the **post-refinement pair
//! sets are bit-equal** to the unsharded engine's (zero disagreeing pairs in
//! either direction, so the F1 gap is 0 ≤ 1e-9), while N = 1 stays
//! bit-identical by construction; and on the largest fixture the
//! incremental dirty-region repair at 4 shards costs at most 1/1.5 of the
//! diagnostic full-repair mode's global fixed point (summed repair
//! wall-clock over identical rounds, same process), touches strictly fewer
//! dirty clusters, and lands on the identical refined clustering.  The
//! full-repair reference is hardware-independent in a way a raw
//! shards-vs-shards wall-clock ratio is not: quality-exact refinement
//! conserves the pruned cross-shard work in its global mirror, so on a
//! single-core host end-to-end refined throughput is flat in N (the
//! measurement is still emitted, ungated) while the repair ratio isolates
//! exactly what the dirty-set restriction buys.  Everything except the
//! timing fields
//! (`seconds*`, `*ops_per_sec`, `speedup_vs_one_shard`,
//! `repair_speedup_vs_full`, `repair_wall_ns*`)
//! is deterministic; CI runs the bench twice and diffs the structural
//! fields.
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "shard_quality",
//!   "scenarios": [
//!     {
//!       "name": "...",                 // fixture workload + objective
//!       "objective": "...",
//!       "rounds": 4,                   // served rounds (after training)
//!       "operations": 240,
//!       "runs": [
//!         {
//!           "shards": 2,
//!           "pre_precision": 1.0,      // merged (raw view) vs unsharded
//!           "pre_recall": 0.82,
//!           "pre_f1": 0.90,
//!           "pre_pairs_missing": 31,   // pairs the raw merge lost
//!           "post_precision": 1.0,     // refined vs unsharded
//!           "post_recall": 1.0,
//!           "post_f1": 1.0,
//!           "post_pairs_missing": 0,   // must be 0 at N in {2, 4}
//!           "post_pairs_extra": 0,     // must be 0 at N in {2, 4}
//!           "cross_edges_recovered": 57,
//!           "boundary_pairs_computed": 412,  // total, initial build + rounds
//!           "refine_merges_applied": 63,     // repair merges across rounds
//!           "seconds_refined": 0.41,   // wall-clock, refined mode
//!           "seconds_raw": 0.22,       // wall-clock, raw mode
//!           "refined_ops_per_sec": 585.4,
//!           "refine_rounds": [         // incremental repair, per served round
//!             {
//!               "round": 1,
//!               "dirty_clusters": 9,   // dirty evaluation set (deterministic)
//!               "regions": 3,          // independent repair regions
//!               "repair_wall_ns": 81250
//!             }
//!           ]
//!         }
//!       ]
//!     }
//!   ],
//!   "refined_throughput": {            // largest fixture, refined mode
//!     "name": "...",
//!     "objective": "...",
//!     "rounds": 4,
//!     "operations": 720,
//!     "repair_speedup_vs_full": 2.4,    // gate: >= 1.5 (4-shard incremental
//!                                       // vs full-repair reference, timing)
//!     "runs": [
//!       {
//!         "shards": 4,
//!         "full_repair": false,         // true on the reference run only
//!         "seconds": 0.61,
//!         "ops_per_sec": 1180.3,
//!         "speedup_vs_one_shard": 1.9,  // informational; ~1.0 on one core
//!         "clusters": 199,              // deterministic structural outcome
//!         "total_dirty_clusters": 310,  // gate: < the full-repair run's
//!         "total_regions": 41,
//!         "repair_wall_ns_total": 910022
//!       }
//!     ]
//!   }
//! }
//! ```

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC, Engine, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_eval::pair_counts;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph, TokenBlocking};
use dc_types::Clustering;
use std::sync::Arc;

/// Shard counts every scenario is measured at.
pub const QUALITY_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Shard counts the zero-gap acceptance bound is enforced at.
pub const ENFORCED_SHARD_COUNTS: [usize; 2] = [2, 4];

/// Per-round diagnostics of the refined run's incremental repair: how big
/// the dirty evaluation set was, how many independent repair regions it
/// decomposed into, and how long the repair took.  The first two are
/// deterministic (pure functions of the workload); the wall-clock is not and
/// is excluded from CI's structural diff.
#[derive(Debug, Clone, Copy)]
pub struct RefineRoundDiag {
    /// Served round (1-based, after the training prefix).
    pub round: usize,
    /// Size of the dirty evaluation set the repair was restricted to.
    pub dirty_clusters: usize,
    /// Independent repair regions the dirty set decomposed into.
    pub regions: usize,
    /// Wall-clock nanoseconds of the repair pass.
    pub repair_wall_ns: u64,
}

/// Measured quality numbers for one shard count within a scenario.
#[derive(Debug, Clone)]
pub struct ShardQualityRunResult {
    /// Number of shards.
    pub shards: usize,
    /// Pair precision of the *merged* (pre-refinement) clustering against
    /// the unsharded engine's, after the final round.
    pub pre_precision: f64,
    /// Pair recall of the merged clustering.
    pub pre_recall: f64,
    /// Pair F1 of the merged clustering.
    pub pre_f1: f64,
    /// Pairs the unsharded engine has that the merged clustering lost.
    pub pre_pairs_missing: u64,
    /// Pair precision of the *refined* clustering against the unsharded
    /// engine's.
    pub post_precision: f64,
    /// Pair recall of the refined clustering.
    pub post_recall: f64,
    /// Pair F1 of the refined clustering.
    pub post_f1: f64,
    /// Pairs the unsharded engine has that the refined clustering lost
    /// (0 when the gap is closed).
    pub post_pairs_missing: u64,
    /// Pairs the refined clustering has that the unsharded engine does not
    /// (0 when the gap is closed).
    pub post_pairs_extra: u64,
    /// Cross-shard edges recovered after the final round.
    pub cross_edges_recovered: usize,
    /// Boundary-pair similarities computed in total (initial build plus
    /// every served round).
    pub boundary_pairs_computed: usize,
    /// Repair merges applied by the refinement pass across the served
    /// rounds (including the initial repair).
    pub refine_merges_applied: usize,
    /// Wall-clock seconds serving the rounds in refined mode.
    pub seconds_refined: f64,
    /// Wall-clock seconds serving the rounds in raw mode.
    pub seconds_raw: f64,
    /// Per-round incremental-repair diagnostics of the refined run (empty
    /// with one shard, where there is no refiner).
    pub refine_rounds: Vec<RefineRoundDiag>,
}

impl ShardQualityRunResult {
    /// Refined-mode serving throughput, given the scenario's operation count.
    pub fn refined_ops_per_sec(&self, operations: usize) -> f64 {
        if self.seconds_refined > 0.0 {
            operations as f64 / self.seconds_refined
        } else {
            0.0
        }
    }
}

/// Measured numbers for one fixture scenario across all shard counts.
#[derive(Debug, Clone)]
pub struct ShardQualityScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served.
    pub operations: usize,
    /// One entry per element of [`QUALITY_SHARD_COUNTS`].
    pub runs: Vec<ShardQualityRunResult>,
}

impl ShardQualityScenarioResult {
    /// The run for a given shard count.
    pub fn run(&self, shards: usize) -> &ShardQualityRunResult {
        self.runs
            .iter()
            .find(|r| r.shards == shards)
            .expect("shard count was measured")
    }
}

const TRAIN_ROUNDS: usize = 2;

/// Deterministic train-then-previous pipeline (see `sharding.rs`).
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..TRAIN_ROUNDS.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

fn scenario(
    name: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) -> ShardQualityScenarioResult {
    let serve = &workload.snapshots[TRAIN_ROUNDS.min(workload.snapshots.len())..];
    let operations: usize = serve.iter().map(|s| s.batch.len()).sum();

    let (graph, previous, dynamicc) = trained_setup(workload, graph_config, objective);
    let objective_name = dynamicc.objective().name().to_string();

    // The unsharded quality reference.
    let mut reference = Engine::new(graph.clone(), previous.clone(), dynamicc.clone());
    for snapshot in serve {
        reference.apply_round(&snapshot.batch);
    }

    let mut runs = Vec::with_capacity(QUALITY_SHARD_COUNTS.len());
    for shards in QUALITY_SHARD_COUNTS {
        // Refined mode (the default): quality-exact, serial repair pass.
        let router = ShardRouter::for_config(shards, graph.config());
        let mut refined_engine =
            ShardedEngine::new(router, graph.clone(), previous.clone(), dynamicc.clone())
                .expect("fixture clustering fits the shard-0 namespace");
        let mut boundary_pairs_computed = 0usize;
        let mut refine_merges_applied = 0usize;
        if let Some(initial) = refined_engine.last_refine_report() {
            boundary_pairs_computed += initial.boundary_pairs_computed;
            refine_merges_applied += initial.merges_applied;
        }
        let mut refine_rounds = Vec::with_capacity(serve.len());
        let span = dc_telemetry::registry().span("bench.shard_quality.refined_loop");
        for (round, snapshot) in serve.iter().enumerate() {
            let report = refined_engine.apply_round(&snapshot.batch);
            if let Some(refine) = report.refine {
                boundary_pairs_computed += refine.boundary_pairs_computed;
                refine_merges_applied += refine.merges_applied;
                refine_rounds.push(RefineRoundDiag {
                    round: round + 1,
                    dirty_clusters: refine.dirty_clusters,
                    regions: refine.regions,
                    repair_wall_ns: refine.repair_wall_ns,
                });
            }
        }
        let seconds_refined = span.finish_ns() as f64 / 1e9;

        // Raw mode: the pre-refinement semantics, for the cost comparison.
        let router = ShardRouter::for_config(shards, graph.config());
        let mut raw_engine =
            ShardedEngine::new_raw(router, graph.clone(), previous.clone(), dynamicc.clone())
                .expect("fixture clustering fits the shard-0 namespace");
        let span = dc_telemetry::registry().span("bench.shard_quality.raw_loop");
        for snapshot in serve {
            raw_engine.apply_round(&snapshot.batch);
        }
        let seconds_raw = span.finish_ns() as f64 / 1e9;

        let pre = pair_counts(&refined_engine.merged_clustering(), reference.clustering());
        let post = pair_counts(&refined_engine.refined_clustering(), reference.clustering());
        runs.push(ShardQualityRunResult {
            shards,
            pre_precision: pre.precision(),
            pre_recall: pre.recall(),
            pre_f1: pre.f1(),
            pre_pairs_missing: pre.together_reference_only,
            post_precision: post.precision(),
            post_recall: post.recall(),
            post_f1: post.f1(),
            post_pairs_missing: post.together_reference_only,
            post_pairs_extra: post.together_result_only,
            cross_edges_recovered: refined_engine.cross_shard_edges_recovered(),
            boundary_pairs_computed,
            refine_merges_applied,
            seconds_refined,
            seconds_raw,
            refine_rounds,
        });
    }

    ShardQualityScenarioResult {
        name: name.to_string(),
        objective: objective_name,
        rounds: serve.len(),
        operations,
        runs,
    }
}

/// Febrl under **exact** token blocking (no stop-word cutoff), so blocking
/// semantics do not depend on shard size and the sharded engine provably has
/// the same information as the unsharded one.
fn exact_febrl_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dc_similarity::measures::CompositeMeasure::febrl_default()),
        Box::new(TokenBlocking::new(0)),
        0.6,
    )
}

/// Shard counts the refined-throughput measurement covers.  The 4-shard
/// entry is additionally measured in diagnostic full-repair mode — the
/// pre-incremental global fixed point — which is what the enforced repair
/// speedup is computed against.
pub const THROUGHPUT_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The shard count the incremental-vs-full repair gate is enforced at.
pub const GATED_SHARD_COUNT: usize = 4;

/// Refined-mode serving wall-clock for one shard count on the largest
/// fixture, plus the repair-work totals that explain it.
#[derive(Debug, Clone, Copy)]
pub struct RefinedThroughputRun {
    /// Number of shards.
    pub shards: usize,
    /// Whether the refiner ran in diagnostic full-repair mode (the global
    /// fixed point every round) instead of the default dirty-region repair.
    pub full_repair: bool,
    /// Wall-clock seconds for the served rounds in refined mode.
    pub seconds: f64,
    /// Refined clusters after the last round (shard-count *dependent* in
    /// general, but deterministic per shard count — and identical between
    /// the incremental and full-repair runs of the same shard count).
    pub clusters: usize,
    /// Dirty evaluation-set sizes summed over the served rounds.
    pub total_dirty_clusters: usize,
    /// Independent repair regions summed over the served rounds.
    pub total_regions: usize,
    /// Repair wall-clock summed over the served rounds, in nanoseconds.
    pub repair_wall_ns_total: u64,
}

/// Refined-mode throughput measurement on the largest fixture workload:
/// wall-clock per shard count, plus the 4-shard full-repair reference run
/// the incremental repair is gated against.
#[derive(Debug, Clone)]
pub struct RefinedThroughputResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served.
    pub operations: usize,
    /// One incremental entry per element of [`THROUGHPUT_SHARD_COUNTS`],
    /// then the [`GATED_SHARD_COUNT`] full-repair reference.
    pub runs: Vec<RefinedThroughputRun>,
}

impl RefinedThroughputResult {
    /// The incremental (default-mode) run for a given shard count.
    pub fn run(&self, shards: usize) -> &RefinedThroughputRun {
        self.runs
            .iter()
            .find(|r| r.shards == shards && !r.full_repair)
            .expect("shard count was measured")
    }

    /// The full-repair reference run (at [`GATED_SHARD_COUNT`] shards).
    pub fn full_repair_run(&self) -> &RefinedThroughputRun {
        self.runs
            .iter()
            .find(|r| r.full_repair)
            .expect("the full-repair reference was measured")
    }

    /// Refined serving throughput at a given shard count (incremental mode).
    pub fn ops_per_sec(&self, shards: usize) -> f64 {
        let run = self.run(shards);
        if run.seconds > 0.0 {
            self.operations as f64 / run.seconds
        } else {
            0.0
        }
    }

    /// Wall-clock speedup of `shards` shards over one shard, refined mode.
    /// On a single-core host this hovers around 1.0 by construction (see
    /// [`run_refined_throughput_bench`]); with cores ≥ shards the partition
    /// and the refiner's scoped fan-outs run concurrently and it rises.
    pub fn speedup(&self, shards: usize) -> f64 {
        let one = self.run(1).seconds;
        let n = self.run(shards).seconds;
        if n > 0.0 {
            one / n
        } else {
            f64::INFINITY
        }
    }

    /// How much faster the incremental dirty-region repair is than the full
    /// global fixed point at [`GATED_SHARD_COUNT`] shards, by summed repair
    /// wall-clock.  This is the enforced gate: it compares two runs in the
    /// same process over identical rounds, so it is meaningful on any
    /// hardware — including a single-core CI host where end-to-end
    /// [`RefinedThroughputResult::speedup`] cannot move.
    pub fn repair_speedup_vs_full(&self) -> f64 {
        let full = self.full_repair_run().repair_wall_ns_total;
        let incremental = self.run(GATED_SHARD_COUNT).repair_wall_ns_total;
        if incremental > 0 {
            full as f64 / incremental as f64
        } else {
            f64::INFINITY
        }
    }
}

/// Measure refined-mode serving against the shard count on the largest
/// fixture workload ([`crate::sharding::large_febrl_workload`] — the same
/// dataset the raw-mode 1.5x scaling gate runs on), plus a full-repair
/// reference run at [`GATED_SHARD_COUNT`] shards.
///
/// One shard has no refiner, so its run is the natural baseline: whatever
/// the refiner costs at N > 1 shows up directly in the ratio.  Note what
/// that ratio can and cannot show: quality-exact refinement maintains a
/// global mirror whose per-round upkeep (chiefly the cross-shard pair
/// similarities the per-shard graphs pruned) equals the work the partition
/// saved, so on a **single core** refined throughput is flat in N — the
/// end-to-end win requires cores ≥ shards, where the per-shard rounds and
/// the refiner's scoped fan-outs (boundary-pair similarities, region flag
/// refresh) actually overlap.  What improves on *any* hardware is the
/// repair pass itself: the dirty-region fixed point does work proportional
/// to what the round touched instead of the whole corpus, which is the
/// enforced [`RefinedThroughputResult::repair_speedup_vs_full`] gate.
pub fn run_refined_throughput_bench() -> RefinedThroughputResult {
    let workload = crate::sharding::large_febrl_workload();
    let serve = &workload.snapshots[TRAIN_ROUNDS.min(workload.snapshots.len())..];
    let operations: usize = serve.iter().map(|s| s.batch.len()).sum();

    let (graph, previous, dynamicc) =
        trained_setup(&workload, exact_febrl_config, Arc::new(DbIndexObjective));
    let objective_name = dynamicc.objective().name().to_string();

    let modes: Vec<(usize, bool)> = THROUGHPUT_SHARD_COUNTS
        .iter()
        .map(|&shards| (shards, false))
        .chain([(GATED_SHARD_COUNT, true)])
        .collect();
    let mut runs = Vec::with_capacity(modes.len());
    for (shards, full_repair) in modes {
        let router = ShardRouter::for_config(shards, graph.config());
        let mut engine =
            ShardedEngine::new(router, graph.clone(), previous.clone(), dynamicc.clone())
                .expect("fixture clustering fits the shard-0 namespace");
        engine.set_full_repair(full_repair);
        let mut total_dirty_clusters = 0usize;
        let mut total_regions = 0usize;
        let mut repair_wall_ns_total = 0u64;
        let span = dc_telemetry::registry().span("bench.shard_quality.throughput_loop");
        for snapshot in serve {
            let report = engine.apply_round(&snapshot.batch);
            if let Some(refine) = report.refine {
                total_dirty_clusters += refine.dirty_clusters;
                total_regions += refine.regions;
                repair_wall_ns_total += refine.repair_wall_ns;
            }
        }
        let seconds = span.finish_ns() as f64 / 1e9;
        runs.push(RefinedThroughputRun {
            shards,
            full_repair,
            seconds,
            clusters: engine.refined_clustering().cluster_count(),
            total_dirty_clusters,
            total_regions,
            repair_wall_ns_total,
        });
    }

    RefinedThroughputResult {
        name: "febrl_large_dbindex_refined".to_string(),
        objective: objective_name,
        rounds: serve.len(),
        operations,
        runs,
    }
}

/// Run the shard-quality benchmark over both fixture families.
pub fn run_shard_quality_bench() -> Vec<ShardQualityScenarioResult> {
    vec![
        scenario(
            "febrl_small_dbindex",
            &small_febrl_workload(),
            exact_febrl_config,
            Arc::new(DbIndexObjective),
        ),
        scenario(
            "access_small_correlation",
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
        ),
    ]
}

/// Serialize the results to the `BENCH_shard_quality.json` document.  Every
/// JSON field sits on its own line so CI's structural diff can drop exactly
/// the timing fields by name and compare the rest.
pub fn shard_quality_results_to_json(
    results: &[ShardQualityScenarioResult],
    throughput: &RefinedThroughputResult,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"shard_quality\",\n  \"scenarios\": [\n");
    for (i, scenario) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"rounds\": {},\n",
                "      \"operations\": {},\n",
                "      \"runs\": [\n",
            ),
            scenario.name, scenario.objective, scenario.rounds, scenario.operations,
        ));
        for (j, run) in scenario.runs.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"shards\": {},\n",
                    "          \"pre_precision\": {:.9},\n",
                    "          \"pre_recall\": {:.9},\n",
                    "          \"pre_f1\": {:.9},\n",
                    "          \"pre_pairs_missing\": {},\n",
                    "          \"post_precision\": {:.9},\n",
                    "          \"post_recall\": {:.9},\n",
                    "          \"post_f1\": {:.9},\n",
                    "          \"post_pairs_missing\": {},\n",
                    "          \"post_pairs_extra\": {},\n",
                    "          \"cross_edges_recovered\": {},\n",
                    "          \"boundary_pairs_computed\": {},\n",
                    "          \"refine_merges_applied\": {},\n",
                    "          \"seconds_refined\": {:.6},\n",
                    "          \"seconds_raw\": {:.6},\n",
                    "          \"refined_ops_per_sec\": {:.2},\n",
                ),
                run.shards,
                run.pre_precision,
                run.pre_recall,
                run.pre_f1,
                run.pre_pairs_missing,
                run.post_precision,
                run.post_recall,
                run.post_f1,
                run.post_pairs_missing,
                run.post_pairs_extra,
                run.cross_edges_recovered,
                run.boundary_pairs_computed,
                run.refine_merges_applied,
                run.seconds_refined,
                run.seconds_raw,
                run.refined_ops_per_sec(scenario.operations),
            ));
            if run.refine_rounds.is_empty() {
                out.push_str("          \"refine_rounds\": []\n");
            } else {
                out.push_str("          \"refine_rounds\": [\n");
                for (k, diag) in run.refine_rounds.iter().enumerate() {
                    out.push_str(&format!(
                        concat!(
                            "            {{\n",
                            "              \"round\": {},\n",
                            "              \"dirty_clusters\": {},\n",
                            "              \"regions\": {},\n",
                            "              \"repair_wall_ns\": {}\n",
                            "            }}{}\n",
                        ),
                        diag.round,
                        diag.dirty_clusters,
                        diag.regions,
                        diag.repair_wall_ns,
                        if k + 1 == run.refine_rounds.len() {
                            ""
                        } else {
                            ","
                        },
                    ));
                }
                out.push_str("          ]\n");
            }
            out.push_str(&format!(
                "        }}{}\n",
                if j + 1 == scenario.runs.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        concat!(
            "  ],\n",
            "  \"refined_throughput\": {{\n",
            "    \"name\": \"{}\",\n",
            "    \"objective\": \"{}\",\n",
            "    \"rounds\": {},\n",
            "    \"operations\": {},\n",
            "    \"repair_speedup_vs_full\": {:.2},\n",
            "    \"runs\": [\n",
        ),
        throughput.name,
        throughput.objective,
        throughput.rounds,
        throughput.operations,
        throughput.repair_speedup_vs_full(),
    ));
    for (i, run) in throughput.runs.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "      {{\n",
                "        \"shards\": {},\n",
                "        \"full_repair\": {},\n",
                "        \"seconds\": {:.6},\n",
                "        \"ops_per_sec\": {:.2},\n",
                "        \"speedup_vs_one_shard\": {:.2},\n",
                "        \"clusters\": {},\n",
                "        \"total_dirty_clusters\": {},\n",
                "        \"total_regions\": {},\n",
                "        \"repair_wall_ns_total\": {}\n",
                "      }}{}\n",
            ),
            run.shards,
            run.full_repair,
            run.seconds,
            if run.seconds > 0.0 {
                throughput.operations as f64 / run.seconds
            } else {
                0.0
            },
            if throughput.run(1).seconds > 0.0 && run.seconds > 0.0 {
                throughput.run(1).seconds / run.seconds
            } else {
                0.0
            },
            run.clusters,
            run.total_dirty_clusters,
            run.total_regions,
            run.repair_wall_ns_total,
            if i + 1 == throughput.runs.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The refinement acceptance gate: at N ∈ {2, 4} on both fixture
    /// families the post-refinement pair sets are bit-equal to the
    /// unsharded engine's; N = 1 is the identity in both modes.
    #[test]
    fn refinement_closes_the_pair_quality_gap() {
        let results = run_shard_quality_bench();
        assert_eq!(results.len(), 2);
        let mut saw_gap = false;
        for scenario in &results {
            assert!(scenario.rounds > 0, "{}: no served rounds", scenario.name);
            assert_eq!(scenario.runs.len(), QUALITY_SHARD_COUNTS.len());
            let one = scenario.run(1);
            assert_eq!(
                (
                    one.pre_pairs_missing,
                    one.post_pairs_missing,
                    one.post_pairs_extra
                ),
                (0, 0, 0),
                "{}: one shard must be the identity",
                scenario.name
            );
            assert!(
                scenario.run(1).refine_rounds.is_empty(),
                "{}: one shard has no refiner, so no per-round repair diagnostics",
                scenario.name
            );
            for &shards in &ENFORCED_SHARD_COUNTS {
                let run = scenario.run(shards);
                assert_eq!(
                    run.refine_rounds.len(),
                    scenario.rounds,
                    "{}: {} shards: every served round must report repair \
                     diagnostics",
                    scenario.name,
                    shards,
                );
                assert_eq!(
                    (run.post_pairs_missing, run.post_pairs_extra),
                    (0, 0),
                    "{}: {} shards: refined pair sets must be bit-equal to the \
                     unsharded engine's (post F1 {})",
                    scenario.name,
                    shards,
                    run.post_f1,
                );
                assert!(
                    (run.post_f1 - 1.0).abs() <= 1e-9,
                    "{}: {} shards: post-refinement F1 gap {} exceeds 1e-9",
                    scenario.name,
                    shards,
                    (run.post_f1 - 1.0).abs(),
                );
                assert!(
                    run.pre_f1 <= run.post_f1 + 1e-12,
                    "{}: {} shards: refinement must not lower quality",
                    scenario.name,
                    shards,
                );
                saw_gap |= run.pre_pairs_missing > 0;
                if run.pre_pairs_missing > 0 {
                    assert!(
                        run.cross_edges_recovered > 0,
                        "{}: {} shards: a pre-refinement gap with no recovered \
                         edges makes no sense",
                        scenario.name,
                        shards,
                    );
                }
            }
        }
        assert!(
            saw_gap,
            "no enforced run ever had a pre-refinement gap; the bench no longer \
             exercises refinement"
        );
    }

    /// The incremental-repair acceptance gate: at 4 shards on the largest
    /// fixture, the dirty-region repair's summed wall-clock must be at most
    /// 1/1.5 of the diagnostic full-repair mode's (the global fixed point
    /// every round), its dirty evaluation sets strictly smaller, and the
    /// final refined clustering identical.  Comparing the two repair modes
    /// in the same process over identical rounds keeps the gate meaningful
    /// on any host; an end-to-end shards-vs-shards ratio is not, because
    /// quality-exact refinement conserves the pruned cross-shard work in
    /// its global mirror, so on a single core refined throughput is flat in
    /// N regardless of how cheap the repair pass is.
    #[test]
    fn incremental_repair_beats_full_repair() {
        let throughput = run_refined_throughput_bench();
        assert_eq!(throughput.runs.len(), THROUGHPUT_SHARD_COUNTS.len() + 1);
        assert!(throughput.operations > 0);
        let one = throughput.run(1);
        assert_eq!(
            (
                one.total_dirty_clusters,
                one.total_regions,
                one.repair_wall_ns_total
            ),
            (0, 0, 0),
            "one shard has no refiner, so zero repair work"
        );
        for &shards in &THROUGHPUT_SHARD_COUNTS[1..] {
            let run = throughput.run(shards);
            assert!(
                run.total_dirty_clusters > 0,
                "{} shards: the workload never dirtied a cluster, so the \
                 bench no longer exercises incremental repair",
                shards,
            );
            assert!(
                run.total_regions > 0 && run.total_regions <= run.total_dirty_clusters,
                "{} shards: region count {} inconsistent with dirty set {}",
                shards,
                run.total_regions,
                run.total_dirty_clusters,
            );
        }

        let incremental = throughput.run(GATED_SHARD_COUNT);
        let full = throughput.full_repair_run();
        assert_eq!(full.shards, GATED_SHARD_COUNT);
        assert_eq!(
            incremental.clusters, full.clusters,
            "incremental and full repair must land on the identical refined \
             clustering",
        );
        assert!(
            incremental.total_dirty_clusters < full.total_dirty_clusters,
            "incremental repair evaluated {} dirty clusters, full repair {}; \
             the dirty-set restriction no longer restricts anything",
            incremental.total_dirty_clusters,
            full.total_dirty_clusters,
        );
        assert!(
            throughput.repair_speedup_vs_full() >= 1.5,
            "{}: incremental repair speedup over full repair {:.2} < 1.5 \
             (incremental {:.3}s over {} dirty clusters, full {:.3}s over {})",
            throughput.name,
            throughput.repair_speedup_vs_full(),
            incremental.repair_wall_ns_total as f64 * 1e-9,
            incremental.total_dirty_clusters,
            full.repair_wall_ns_total as f64 * 1e-9,
            full.total_dirty_clusters,
        );

        let results = run_shard_quality_bench();
        let json = shard_quality_results_to_json(&results, &throughput);
        assert!(json.contains("\"bench\": \"shard_quality\""));
        assert!(json.contains("post_pairs_missing"));
        assert!(json.contains("seconds_raw"));
        assert!(json.contains("\"refine_rounds\": ["));
        assert!(json.contains("dirty_clusters"));
        assert!(json.contains("\"refined_throughput\": {"));
        assert!(json.contains("\"repair_speedup_vs_full\": "));
        assert!(json.contains("\"full_repair\": true"));
        assert!(json.contains("speedup_vs_one_shard"));
    }
}
