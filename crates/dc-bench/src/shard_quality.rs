//! The `BENCH_shard_quality` baseline: pair-level quality of sharded vs
//! unsharded serving, before and after cross-shard refinement.
//!
//! The experiments binary (`experiments bench-shard-quality`) serializes
//! [`run_shard_quality_bench`]'s results to `BENCH_shard_quality.json`.
//! Each scenario serves the identical fixture workload through
//!
//! * an unsharded [`Engine`] (the quality reference),
//! * a **refined** [`ShardedEngine`] (the default mode: boundary pair
//!   exchange + global merge repair after every round), and
//! * a **raw** [`ShardedEngine::new_raw`] (the pre-refinement semantics:
//!   cross-shard edges silently dropped),
//!
//! at every shard count in {1, 2, 4, 8}, and reports pair
//! precision/recall/F1 of both sharded clusterings against the unsharded
//! engine's after the final round, the recovered-edge and boundary-pair
//! counters, and the wall-clock of both modes (the measured price of
//! quality-exact sharding).
//!
//! The acceptance gate of the refinement issue, enforced by this module's
//! test: at N ∈ {2, 4} on both fixture families the **post-refinement pair
//! sets are bit-equal** to the unsharded engine's (zero disagreeing pairs in
//! either direction, so the F1 gap is 0 ≤ 1e-9), while N = 1 stays
//! bit-identical by construction.  Everything except the two timing fields
//! is deterministic; CI runs the bench twice and diffs the structural
//! fields.
//!
//! Schema of the emitted JSON (documented in the README):
//!
//! ```json
//! {
//!   "bench": "shard_quality",
//!   "scenarios": [
//!     {
//!       "name": "...",                 // fixture workload + objective
//!       "objective": "...",
//!       "rounds": 4,                   // served rounds (after training)
//!       "operations": 240,
//!       "runs": [
//!         {
//!           "shards": 2,
//!           "pre_precision": 1.0,      // merged (raw view) vs unsharded
//!           "pre_recall": 0.82,
//!           "pre_f1": 0.90,
//!           "pre_pairs_missing": 31,   // pairs the raw merge lost
//!           "post_precision": 1.0,     // refined vs unsharded
//!           "post_recall": 1.0,
//!           "post_f1": 1.0,
//!           "post_pairs_missing": 0,   // must be 0 at N in {2, 4}
//!           "post_pairs_extra": 0,     // must be 0 at N in {2, 4}
//!           "cross_edges_recovered": 57,
//!           "boundary_pairs_computed": 412,  // total, initial build + rounds
//!           "refine_merges_applied": 63,     // repair merges across rounds
//!           "seconds_refined": 0.41,   // wall-clock, refined mode
//!           "seconds_raw": 0.22        // wall-clock, raw mode
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```

use dc_batch::{BatchClusterer, HillClimbing};
use dc_core::{train_on_workload, DynamicC, Engine, ShardedEngine};
use dc_datagen::fixtures::{small_access_workload, small_febrl_workload};
use dc_datagen::DynamicWorkload;
use dc_eval::pair_counts;
use dc_objective::{CorrelationObjective, DbIndexObjective, ObjectiveFunction};
use dc_similarity::{GraphConfig, ShardRouter, SimilarityGraph, TokenBlocking};
use dc_types::Clustering;
use std::sync::Arc;
use std::time::Instant;

/// Shard counts every scenario is measured at.
pub const QUALITY_SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Shard counts the zero-gap acceptance bound is enforced at.
pub const ENFORCED_SHARD_COUNTS: [usize; 2] = [2, 4];

/// Measured quality numbers for one shard count within a scenario.
#[derive(Debug, Clone, Copy)]
pub struct ShardQualityRunResult {
    /// Number of shards.
    pub shards: usize,
    /// Pair precision of the *merged* (pre-refinement) clustering against
    /// the unsharded engine's, after the final round.
    pub pre_precision: f64,
    /// Pair recall of the merged clustering.
    pub pre_recall: f64,
    /// Pair F1 of the merged clustering.
    pub pre_f1: f64,
    /// Pairs the unsharded engine has that the merged clustering lost.
    pub pre_pairs_missing: u64,
    /// Pair precision of the *refined* clustering against the unsharded
    /// engine's.
    pub post_precision: f64,
    /// Pair recall of the refined clustering.
    pub post_recall: f64,
    /// Pair F1 of the refined clustering.
    pub post_f1: f64,
    /// Pairs the unsharded engine has that the refined clustering lost
    /// (0 when the gap is closed).
    pub post_pairs_missing: u64,
    /// Pairs the refined clustering has that the unsharded engine does not
    /// (0 when the gap is closed).
    pub post_pairs_extra: u64,
    /// Cross-shard edges recovered after the final round.
    pub cross_edges_recovered: usize,
    /// Boundary-pair similarities computed in total (initial build plus
    /// every served round).
    pub boundary_pairs_computed: usize,
    /// Repair merges applied by the refinement pass across the served
    /// rounds (including the initial repair).
    pub refine_merges_applied: usize,
    /// Wall-clock seconds serving the rounds in refined mode.
    pub seconds_refined: f64,
    /// Wall-clock seconds serving the rounds in raw mode.
    pub seconds_raw: f64,
}

/// Measured numbers for one fixture scenario across all shard counts.
#[derive(Debug, Clone)]
pub struct ShardQualityScenarioResult {
    /// Scenario name (fixture + objective).
    pub name: String,
    /// Objective used for search and verification.
    pub objective: String,
    /// Served rounds (after the training prefix).
    pub rounds: usize,
    /// Total workload operations served.
    pub operations: usize,
    /// One entry per element of [`QUALITY_SHARD_COUNTS`].
    pub runs: Vec<ShardQualityRunResult>,
}

impl ShardQualityScenarioResult {
    /// The run for a given shard count.
    pub fn run(&self, shards: usize) -> &ShardQualityRunResult {
        self.runs
            .iter()
            .find(|r| r.shards == shards)
            .expect("shard count was measured")
    }
}

const TRAIN_ROUNDS: usize = 2;

/// Deterministic train-then-previous pipeline (see `sharding.rs`).
fn trained_setup(
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig,
    objective: Arc<dyn ObjectiveFunction>,
) -> (SimilarityGraph, Clustering, DynamicC) {
    let mut graph = SimilarityGraph::build(graph_config(), &workload.initial);
    let batch = HillClimbing::with_objective(objective.clone());
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let train = &workload.snapshots[..TRAIN_ROUNDS.min(workload.snapshots.len())];
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let previous = report.final_clustering(&initial);
    (graph, previous, dynamicc)
}

fn scenario(
    name: &str,
    workload: &DynamicWorkload,
    graph_config: impl Fn() -> GraphConfig + Copy,
    objective: Arc<dyn ObjectiveFunction>,
) -> ShardQualityScenarioResult {
    let serve = &workload.snapshots[TRAIN_ROUNDS.min(workload.snapshots.len())..];
    let operations: usize = serve.iter().map(|s| s.batch.len()).sum();

    let (graph, previous, dynamicc) = trained_setup(workload, graph_config, objective);
    let objective_name = dynamicc.objective().name().to_string();

    // The unsharded quality reference.
    let mut reference = Engine::new(graph.clone(), previous.clone(), dynamicc.clone());
    for snapshot in serve {
        reference.apply_round(&snapshot.batch);
    }

    let mut runs = Vec::with_capacity(QUALITY_SHARD_COUNTS.len());
    for shards in QUALITY_SHARD_COUNTS {
        // Refined mode (the default): quality-exact, serial repair pass.
        let router = ShardRouter::for_config(shards, graph.config());
        let mut refined_engine =
            ShardedEngine::new(router, graph.clone(), previous.clone(), dynamicc.clone())
                .expect("fixture clustering fits the shard-0 namespace");
        let mut boundary_pairs_computed = 0usize;
        let mut refine_merges_applied = 0usize;
        if let Some(initial) = refined_engine.last_refine_report() {
            boundary_pairs_computed += initial.boundary_pairs_computed;
            refine_merges_applied += initial.merges_applied;
        }
        let started = Instant::now();
        for snapshot in serve {
            let report = refined_engine.apply_round(&snapshot.batch);
            if let Some(refine) = report.refine {
                boundary_pairs_computed += refine.boundary_pairs_computed;
                refine_merges_applied += refine.merges_applied;
            }
        }
        let seconds_refined = started.elapsed().as_secs_f64();

        // Raw mode: the pre-refinement semantics, for the cost comparison.
        let router = ShardRouter::for_config(shards, graph.config());
        let mut raw_engine =
            ShardedEngine::new_raw(router, graph.clone(), previous.clone(), dynamicc.clone())
                .expect("fixture clustering fits the shard-0 namespace");
        let started = Instant::now();
        for snapshot in serve {
            raw_engine.apply_round(&snapshot.batch);
        }
        let seconds_raw = started.elapsed().as_secs_f64();

        let pre = pair_counts(&refined_engine.merged_clustering(), reference.clustering());
        let post = pair_counts(&refined_engine.refined_clustering(), reference.clustering());
        runs.push(ShardQualityRunResult {
            shards,
            pre_precision: pre.precision(),
            pre_recall: pre.recall(),
            pre_f1: pre.f1(),
            pre_pairs_missing: pre.together_reference_only,
            post_precision: post.precision(),
            post_recall: post.recall(),
            post_f1: post.f1(),
            post_pairs_missing: post.together_reference_only,
            post_pairs_extra: post.together_result_only,
            cross_edges_recovered: refined_engine.cross_shard_edges_recovered(),
            boundary_pairs_computed,
            refine_merges_applied,
            seconds_refined,
            seconds_raw,
        });
    }

    ShardQualityScenarioResult {
        name: name.to_string(),
        objective: objective_name,
        rounds: serve.len(),
        operations,
        runs,
    }
}

/// Febrl under **exact** token blocking (no stop-word cutoff), so blocking
/// semantics do not depend on shard size and the sharded engine provably has
/// the same information as the unsharded one.
fn exact_febrl_config() -> GraphConfig {
    GraphConfig::new(
        Box::new(dc_similarity::measures::CompositeMeasure::febrl_default()),
        Box::new(TokenBlocking::new(0)),
        0.6,
    )
}

/// Run the shard-quality benchmark over both fixture families.
pub fn run_shard_quality_bench() -> Vec<ShardQualityScenarioResult> {
    vec![
        scenario(
            "febrl_small_dbindex",
            &small_febrl_workload(),
            exact_febrl_config,
            Arc::new(DbIndexObjective),
        ),
        scenario(
            "access_small_correlation",
            &small_access_workload(),
            || GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
            Arc::new(CorrelationObjective),
        ),
    ]
}

/// Serialize the results to the `BENCH_shard_quality.json` document.
pub fn shard_quality_results_to_json(results: &[ShardQualityScenarioResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"shard_quality\",\n  \"scenarios\": [\n");
    for (i, scenario) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"name\": \"{}\",\n",
                "      \"objective\": \"{}\",\n",
                "      \"rounds\": {},\n",
                "      \"operations\": {},\n",
                "      \"runs\": [\n",
            ),
            scenario.name, scenario.objective, scenario.rounds, scenario.operations,
        ));
        for (j, run) in scenario.runs.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "        {{\n",
                    "          \"shards\": {},\n",
                    "          \"pre_precision\": {:.9},\n",
                    "          \"pre_recall\": {:.9},\n",
                    "          \"pre_f1\": {:.9},\n",
                    "          \"pre_pairs_missing\": {},\n",
                    "          \"post_precision\": {:.9},\n",
                    "          \"post_recall\": {:.9},\n",
                    "          \"post_f1\": {:.9},\n",
                    "          \"post_pairs_missing\": {},\n",
                    "          \"post_pairs_extra\": {},\n",
                    "          \"cross_edges_recovered\": {},\n",
                    "          \"boundary_pairs_computed\": {},\n",
                    "          \"refine_merges_applied\": {},\n",
                    "          \"seconds_refined\": {:.6},\n",
                    "          \"seconds_raw\": {:.6}\n",
                    "        }}{}\n",
                ),
                run.shards,
                run.pre_precision,
                run.pre_recall,
                run.pre_f1,
                run.pre_pairs_missing,
                run.post_precision,
                run.post_recall,
                run.post_f1,
                run.post_pairs_missing,
                run.post_pairs_extra,
                run.cross_edges_recovered,
                run.boundary_pairs_computed,
                run.refine_merges_applied,
                run.seconds_refined,
                run.seconds_raw,
                if j + 1 == scenario.runs.len() {
                    ""
                } else {
                    ","
                },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The refinement acceptance gate: at N ∈ {2, 4} on both fixture
    /// families the post-refinement pair sets are bit-equal to the
    /// unsharded engine's; N = 1 is the identity in both modes.
    #[test]
    fn refinement_closes_the_pair_quality_gap() {
        let results = run_shard_quality_bench();
        assert_eq!(results.len(), 2);
        let mut saw_gap = false;
        for scenario in &results {
            assert!(scenario.rounds > 0, "{}: no served rounds", scenario.name);
            assert_eq!(scenario.runs.len(), QUALITY_SHARD_COUNTS.len());
            let one = scenario.run(1);
            assert_eq!(
                (
                    one.pre_pairs_missing,
                    one.post_pairs_missing,
                    one.post_pairs_extra
                ),
                (0, 0, 0),
                "{}: one shard must be the identity",
                scenario.name
            );
            for &shards in &ENFORCED_SHARD_COUNTS {
                let run = scenario.run(shards);
                assert_eq!(
                    (run.post_pairs_missing, run.post_pairs_extra),
                    (0, 0),
                    "{}: {} shards: refined pair sets must be bit-equal to the \
                     unsharded engine's (post F1 {})",
                    scenario.name,
                    shards,
                    run.post_f1,
                );
                assert!(
                    (run.post_f1 - 1.0).abs() <= 1e-9,
                    "{}: {} shards: post-refinement F1 gap {} exceeds 1e-9",
                    scenario.name,
                    shards,
                    (run.post_f1 - 1.0).abs(),
                );
                assert!(
                    run.pre_f1 <= run.post_f1 + 1e-12,
                    "{}: {} shards: refinement must not lower quality",
                    scenario.name,
                    shards,
                );
                saw_gap |= run.pre_pairs_missing > 0;
                if run.pre_pairs_missing > 0 {
                    assert!(
                        run.cross_edges_recovered > 0,
                        "{}: {} shards: a pre-refinement gap with no recovered \
                         edges makes no sense",
                        scenario.name,
                        shards,
                    );
                }
            }
        }
        assert!(
            saw_gap,
            "no enforced run ever had a pre-refinement gap; the bench no longer \
             exercises refinement"
        );
        let json = shard_quality_results_to_json(&results);
        assert!(json.contains("\"bench\": \"shard_quality\""));
        assert!(json.contains("post_pairs_missing"));
        assert!(json.contains("seconds_raw"));
    }
}
