//! Property tests: for every objective, the (possibly incrementally
//! overridden) `merge_delta` / `split_delta` / `move_delta` must equal the
//! full recompute `evaluate(after) − evaluate(before)` at every step of a
//! random merge/split/move sequence — not just on a single operation from a
//! fresh clustering, which is what the per-module tests check.

use dc_objective::{
    CorrelationObjective, DbIndexObjective, DensityObjective, KMeansObjective, ObjectiveFunction,
};
use dc_similarity::fixtures::graph_from_edges;
use dc_similarity::{GraphConfig, SimilarityGraph};
use dc_types::{Clustering, Dataset, ObjectId, RecordBuilder};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_OBJECTS: u64 = 10;
const TOLERANCE: f64 = 1e-7;

/// One random structural operation, resolved against the live clustering by
/// indexing modulo the current cluster/member counts.
#[derive(Debug, Clone)]
enum Op {
    Merge(usize, usize),
    Split(usize, usize),
    Move(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Merge(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Split(a, b)),
        (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Move(a, b)),
    ]
}

fn arbitrary_edges() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    proptest::collection::vec(
        (1u64..=N_OBJECTS, 1u64..=N_OBJECTS, 0.05f64..1.0)
            .prop_filter("no self loops", |(a, b, _)| a != b),
        0..24,
    )
}

fn arbitrary_assignment() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..4, N_OBJECTS as usize)
}

fn clustering_from_assignment(assignment: &[u64]) -> Clustering {
    let mut groups: std::collections::BTreeMap<u64, Vec<ObjectId>> =
        std::collections::BTreeMap::new();
    for (i, &g) in assignment.iter().enumerate() {
        groups
            .entry(g)
            .or_default()
            .push(ObjectId::new(i as u64 + 1));
    }
    Clustering::from_groups(groups.into_values()).unwrap()
}

fn numeric_graph(points: &[(f64, f64)]) -> SimilarityGraph {
    let mut ds = Dataset::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        ds.insert_with_id(
            ObjectId::new(i as u64 + 1),
            RecordBuilder::new().vector(vec![x, y]).build(),
        )
        .unwrap();
    }
    SimilarityGraph::build(GraphConfig::numeric_euclidean(2.0, 4.0, 2, 0.05), &ds)
}

fn objectives() -> Vec<Box<dyn ObjectiveFunction>> {
    vec![
        Box::new(CorrelationObjective),
        Box::new(KMeansObjective),
        Box::new(DbIndexObjective),
        Box::new(DensityObjective::default()),
    ]
}

/// Drive one objective through the op sequence, checking every reported
/// delta against a full recompute before applying the operation.
fn check_sequence(
    objective: &dyn ObjectiveFunction,
    graph: &SimilarityGraph,
    mut clustering: Clustering,
    ops: &[Op],
) {
    for op in ops {
        let before = objective.evaluate(graph, &clustering);
        let after = match *op {
            Op::Merge(a, b) => {
                let cids = clustering.cluster_ids();
                if cids.len() < 2 {
                    continue;
                }
                let (a, b) = (cids[a % cids.len()], cids[b % cids.len()]);
                if a == b {
                    continue;
                }
                let delta = objective.merge_delta(graph, &clustering, a, b);
                let mut after = clustering.clone();
                after.merge(a, b).unwrap();
                let full = objective.evaluate(graph, &after) - before;
                assert!(
                    (delta - full).abs() < TOLERANCE,
                    "{}: merge_delta {delta} != recompute {full}",
                    objective.name()
                );
                after
            }
            Op::Split(c, k) => {
                let cids = clustering.cluster_ids();
                let cid = cids[c % cids.len()];
                let members: Vec<ObjectId> = clustering.cluster(cid).unwrap().iter().collect();
                if members.len() < 2 {
                    continue;
                }
                // Carve out a strict, non-empty prefix of the members.
                let take = 1 + k % (members.len() - 1);
                let part: BTreeSet<ObjectId> = members[..take].iter().copied().collect();
                let delta = objective.split_delta(graph, &clustering, cid, &part);
                let mut after = clustering.clone();
                after.split(cid, &part).unwrap();
                let full = objective.evaluate(graph, &after) - before;
                assert!(
                    (delta - full).abs() < TOLERANCE,
                    "{}: split_delta {delta} != recompute {full}",
                    objective.name()
                );
                after
            }
            Op::Move(o, t) => {
                let oids = clustering.object_ids();
                let cids = clustering.cluster_ids();
                let oid = oids[o % oids.len()];
                let target = cids[t % cids.len()];
                if clustering.cluster_of(oid) == Some(target) {
                    continue;
                }
                let delta = objective.move_delta(graph, &clustering, oid, target);
                let mut after = clustering.clone();
                after.move_object(oid, target).unwrap();
                let full = objective.evaluate(graph, &after) - before;
                assert!(
                    (delta - full).abs() < TOLERANCE,
                    "{}: move_delta {delta} != recompute {full}",
                    objective.name()
                );
                after
            }
        };
        clustering = after;
        clustering.check_invariants().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Weighted similarity graphs (the correlation / DB-index / density
    /// habitat; k-means sees zero-vectors and must still be consistent).
    #[test]
    fn deltas_match_recompute_on_weighted_graphs(
        edges in arbitrary_edges(),
        assignment in arbitrary_assignment(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let graph = graph_from_edges(N_OBJECTS, &edges);
        let clustering = clustering_from_assignment(&assignment);
        for objective in objectives() {
            check_sequence(objective.as_ref(), &graph, clustering.clone(), &ops);
        }
    }

    /// Numeric point graphs (the k-means habitat; the graph-based objectives
    /// see the induced similarity edges and must still be consistent).
    #[test]
    fn deltas_match_recompute_on_numeric_graphs(
        points in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), N_OBJECTS as usize),
        assignment in arbitrary_assignment(),
        ops in proptest::collection::vec(op_strategy(), 1..10),
    ) {
        let graph = numeric_graph(&points);
        let clustering = clustering_from_assignment(&assignment);
        for objective in objectives() {
            check_sequence(objective.as_ref(), &graph, clustering.clone(), &ops);
        }
    }
}
