//! The [`ObjectiveFunction`] trait and shared helpers.

use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Deltas smaller than this (in absolute value) are treated as "no change";
/// an operation must reduce the objective by more than this epsilon to count
/// as an improvement.  This keeps the batch algorithms and the verification
/// step from oscillating on floating-point noise.
pub const IMPROVEMENT_EPSILON: f64 = 1e-9;

/// Whether a delta (`score(after) − score(before)`) is an improvement.
#[inline]
pub fn improves(delta: f64) -> bool {
    delta < -IMPROVEMENT_EPSILON
}

/// Which clustering family an objective belongs to.  Used by the experiment
/// harness to label output and choose dataset defaults; it has no effect on
/// the algorithms themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectiveKind {
    /// Correlation clustering (Eq. 1).
    Correlation,
    /// k-means / within-cluster sum of squares.
    KMeans,
    /// Davies–Bouldin index.
    DbIndex,
    /// Density-consistency cost (DBSCAN verification).
    Density,
}

impl std::fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectiveKind::Correlation => write!(f, "correlation"),
            ObjectiveKind::KMeans => write!(f, "k-means"),
            ObjectiveKind::DbIndex => write!(f, "db-index"),
            ObjectiveKind::Density => write!(f, "density"),
        }
    }
}

/// How an objective's accept/reject *decisions* depend on state outside the
/// changed neighbourhood.  Incremental repair (the sharded refiner's
/// dirty-region pass) skips re-evaluating clusters whose neighbourhood did
/// not change; whether that skip is sound depends on this structure:
///
/// * a **sum** objective's delta for a change is a pure function of the
///   changed neighbourhood — a rejection proven once holds until the
///   neighbourhood changes;
/// * a **mean-over-clusters** objective divides a sum by the cluster count,
///   so a change's delta moves with the *global* score even when its local
///   contribution is frozen: a rejection proven at one score can flip when
///   the score drifts far enough, and stays provably valid only within a
///   score interval (see [`ObjectiveFunction::merge_rejection_score_floor`]);
/// * an objective declaring nothing must be treated as having no exploitable
///   structure at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionLocality {
    /// The objective is a sum of per-cluster (or per-edge) terms: every
    /// delta is purely local, so a proven rejection holds at any global
    /// score.  Correlation, k-means, and the density cost are all sums.
    Local,
    /// The objective is a mean of per-cluster terms (`sum / cluster_count`):
    /// deltas couple to the global score through the denominator.  A proven
    /// rejection is valid exactly while the current score stays inside the
    /// interval the `*_rejection_score_*` hooks report.
    GlobalMean,
    /// No structure declared (the default): consumers must re-evaluate
    /// everything every time — incremental repair falls back to a full pass.
    Opaque,
}

impl std::fmt::Display for DecisionLocality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecisionLocality::Local => write!(f, "local"),
            DecisionLocality::GlobalMean => write!(f, "global-mean"),
            DecisionLocality::Opaque => write!(f, "opaque"),
        }
    }
}

/// A clustering cost function: lower is better.
///
/// The default implementations of the delta methods simulate the change on a
/// clone of the clustering and evaluate the objective twice.  That is always
/// correct, and concrete objectives override the deltas with closed-form or
/// locally-recomputed versions where possible (the property tests in each
/// module check the override against the simulated default).
pub trait ObjectiveFunction: Send + Sync {
    /// Human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Which family the objective belongs to.
    fn kind(&self) -> ObjectiveKind;

    /// How this objective's accept/reject decisions depend on global state —
    /// see [`DecisionLocality`].  The default is
    /// [`DecisionLocality::Opaque`], which is always sound: consumers that
    /// cache decisions simply cache nothing.  Objectives should declare the
    /// strongest locality they can prove.
    fn decision_locality(&self) -> DecisionLocality {
        DecisionLocality::Opaque
    }

    /// For a [`DecisionLocality::GlobalMean`] objective: the score floor
    /// below which a merge rejection proven at `(delta, score, clusters)`
    /// stops being valid.  The rejection — "no merge of this cluster
    /// improves" — remains guaranteed while the current global score stays
    /// **at or above** the returned floor and the cluster's decision
    /// neighbourhood is unchanged; once the score falls below it, the
    /// decision must be re-evaluated.  `delta` is the *smallest* rejected
    /// merge delta, `score` and `clusters` describe the state the rejection
    /// was proven at.  The default (negative infinity) means "valid at any
    /// score", which is correct for [`DecisionLocality::Local`] objectives
    /// and never consulted for opaque ones.
    fn merge_rejection_score_floor(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        let _ = (delta, score, clusters);
        f64::NEG_INFINITY
    }

    /// For a [`DecisionLocality::GlobalMean`] objective: the score ceiling
    /// above which a split rejection proven at `(delta, score, clusters)`
    /// stops being valid — the mirror image of
    /// [`ObjectiveFunction::merge_rejection_score_floor`].  The rejection
    /// remains guaranteed while the current score stays **at or below** the
    /// returned ceiling.  The default (positive infinity) means "valid at
    /// any score".
    fn split_rejection_score_ceil(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        let _ = (delta, score, clusters);
        f64::INFINITY
    }

    /// Full cost of a clustering (lower is better).
    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64;

    /// `score(after) − score(before)` for merging clusters `a` and `b`.
    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b || !clustering.contains_cluster(a) || !clustering.contains_cluster(b) {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after.merge(a, b).expect("both clusters exist and differ");
        self.evaluate(graph, &after) - before
    }

    /// `score(after) − score(before)` for splitting `part` out of cluster
    /// `cid` (the remaining members stay together).
    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if part.is_empty() || part.len() >= cluster.len() {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after.split(cid, part).expect("valid split arguments");
        self.evaluate(graph, &after) - before
    }

    /// `score(after) − score(before)` for moving one object into an existing
    /// target cluster.
    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let Some(source) = clustering.cluster_of(oid) else {
            return 0.0;
        };
        if source == target || !clustering.contains_cluster(target) {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after
            .move_object(oid, target)
            .expect("object and target exist");
        self.evaluate(graph, &after) - before
    }

    // ------------------------------------------------------------------
    // Aggregate-reusing hooks
    // ------------------------------------------------------------------
    //
    // The serving path maintains one `ClusterAggregates` incrementally and
    // calls these `_with` variants so that verification does not re-scan the
    // graph.  The defaults ignore the aggregates and fall back to the plain
    // (rebuild-as-needed) implementations, so an objective that cannot
    // exploit the materialized state stays exactly as correct — and exactly
    // as slow — as before.  `agg` must describe `(graph, clustering)`.

    /// Full cost of a clustering given its maintained aggregates.
    fn evaluate_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
    ) -> f64 {
        let _ = agg;
        self.evaluate(graph, clustering)
    }

    /// [`ObjectiveFunction::merge_delta`] given maintained aggregates.
    fn merge_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        let _ = agg;
        self.merge_delta(graph, clustering, a, b)
    }

    /// [`ObjectiveFunction::split_delta`] given maintained aggregates.
    fn split_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let _ = agg;
        self.split_delta(graph, clustering, cid, part)
    }

    /// [`ObjectiveFunction::move_delta`] given maintained aggregates.
    fn move_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let _ = agg;
        self.move_delta(graph, clustering, oid, target)
    }
}

/// A wrapper that deliberately disables an objective's aggregate-reusing
/// `_with` overrides: every `_with` call falls through the trait defaults to
/// the inner objective's plain (rebuild-as-needed) implementation.
///
/// This is the reference "slow path" used by the equivalence tests and the
/// `BENCH_dynamic_serving` baseline: running the same serving code once with
/// the bare objective and once wrapped in `SlowPathObjective` must produce
/// the identical clustering, while the full-build counter quantifies how
/// many O(E) rebuilds the incremental path avoided.
pub struct SlowPathObjective {
    inner: Arc<dyn ObjectiveFunction>,
}

impl SlowPathObjective {
    /// Wrap an objective, hiding its `_with` overrides.
    pub fn new(inner: Arc<dyn ObjectiveFunction>) -> Self {
        SlowPathObjective { inner }
    }
}

impl ObjectiveFunction for SlowPathObjective {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn kind(&self) -> ObjectiveKind {
        self.inner.kind()
    }

    // Decision structure is a property of the objective's mathematics, not
    // of the fast/slow evaluation path, so the wrapper forwards it: the
    // slow-path equivalence tests must make the same skip/re-evaluate
    // decisions as the wrapped objective.
    fn decision_locality(&self) -> DecisionLocality {
        self.inner.decision_locality()
    }

    fn merge_rejection_score_floor(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        self.inner
            .merge_rejection_score_floor(delta, score, clusters)
    }

    fn split_rejection_score_ceil(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        self.inner
            .split_rejection_score_ceil(delta, score, clusters)
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        self.inner.evaluate(graph, clustering)
    }

    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        self.inner.merge_delta(graph, clustering, a, b)
    }

    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        self.inner.split_delta(graph, clustering, cid, part)
    }

    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        self.inner.move_delta(graph, clustering, oid, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_threshold() {
        assert!(improves(-1.0));
        assert!(improves(-1e-6));
        assert!(!improves(0.0));
        assert!(!improves(-1e-12));
        assert!(!improves(0.5));
    }

    #[test]
    fn objective_kind_display() {
        assert_eq!(ObjectiveKind::Correlation.to_string(), "correlation");
        assert_eq!(ObjectiveKind::KMeans.to_string(), "k-means");
        assert_eq!(ObjectiveKind::DbIndex.to_string(), "db-index");
        assert_eq!(ObjectiveKind::Density.to_string(), "density");
    }

    #[test]
    fn decision_locality_display() {
        assert_eq!(DecisionLocality::Local.to_string(), "local");
        assert_eq!(DecisionLocality::GlobalMean.to_string(), "global-mean");
        assert_eq!(DecisionLocality::Opaque.to_string(), "opaque");
    }

    /// An objective that declares nothing must be opaque with always-valid
    /// intervals (they are never consulted for opaque objectives, but the
    /// defaults must still be the non-committal ones).
    #[test]
    fn default_locality_is_opaque_with_unbounded_intervals() {
        struct Bare;
        impl ObjectiveFunction for Bare {
            fn name(&self) -> &'static str {
                "bare"
            }
            fn kind(&self) -> ObjectiveKind {
                ObjectiveKind::Correlation
            }
            fn evaluate(&self, _: &SimilarityGraph, _: &Clustering) -> f64 {
                0.0
            }
        }
        assert_eq!(Bare.decision_locality(), DecisionLocality::Opaque);
        assert_eq!(
            Bare.merge_rejection_score_floor(0.1, 0.5, 10),
            f64::NEG_INFINITY
        );
        assert_eq!(Bare.split_rejection_score_ceil(0.1, 0.5, 10), f64::INFINITY);
    }

    #[test]
    fn slow_path_forwards_decision_structure() {
        let inner = Arc::new(crate::DbIndexObjective);
        let slow = SlowPathObjective::new(inner.clone());
        assert_eq!(slow.decision_locality(), inner.decision_locality());
        assert_eq!(
            slow.merge_rejection_score_floor(0.01, 0.2, 50),
            inner.merge_rejection_score_floor(0.01, 0.2, 50)
        );
        assert_eq!(
            slow.split_rejection_score_ceil(0.01, 0.2, 50),
            inner.split_rejection_score_ceil(0.01, 0.2, 50)
        );
    }
}
