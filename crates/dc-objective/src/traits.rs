//! The [`ObjectiveFunction`] trait and shared helpers.

use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Deltas smaller than this (in absolute value) are treated as "no change";
/// an operation must reduce the objective by more than this epsilon to count
/// as an improvement.  This keeps the batch algorithms and the verification
/// step from oscillating on floating-point noise.
pub const IMPROVEMENT_EPSILON: f64 = 1e-9;

/// Whether a delta (`score(after) − score(before)`) is an improvement.
#[inline]
pub fn improves(delta: f64) -> bool {
    delta < -IMPROVEMENT_EPSILON
}

/// Which clustering family an objective belongs to.  Used by the experiment
/// harness to label output and choose dataset defaults; it has no effect on
/// the algorithms themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectiveKind {
    /// Correlation clustering (Eq. 1).
    Correlation,
    /// k-means / within-cluster sum of squares.
    KMeans,
    /// Davies–Bouldin index.
    DbIndex,
    /// Density-consistency cost (DBSCAN verification).
    Density,
}

impl std::fmt::Display for ObjectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectiveKind::Correlation => write!(f, "correlation"),
            ObjectiveKind::KMeans => write!(f, "k-means"),
            ObjectiveKind::DbIndex => write!(f, "db-index"),
            ObjectiveKind::Density => write!(f, "density"),
        }
    }
}

/// A clustering cost function: lower is better.
///
/// The default implementations of the delta methods simulate the change on a
/// clone of the clustering and evaluate the objective twice.  That is always
/// correct, and concrete objectives override the deltas with closed-form or
/// locally-recomputed versions where possible (the property tests in each
/// module check the override against the simulated default).
pub trait ObjectiveFunction: Send + Sync {
    /// Human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Which family the objective belongs to.
    fn kind(&self) -> ObjectiveKind;

    /// Full cost of a clustering (lower is better).
    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64;

    /// `score(after) − score(before)` for merging clusters `a` and `b`.
    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b || !clustering.contains_cluster(a) || !clustering.contains_cluster(b) {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after.merge(a, b).expect("both clusters exist and differ");
        self.evaluate(graph, &after) - before
    }

    /// `score(after) − score(before)` for splitting `part` out of cluster
    /// `cid` (the remaining members stay together).
    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if part.is_empty() || part.len() >= cluster.len() {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after.split(cid, part).expect("valid split arguments");
        self.evaluate(graph, &after) - before
    }

    /// `score(after) − score(before)` for moving one object into an existing
    /// target cluster.
    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let Some(source) = clustering.cluster_of(oid) else {
            return 0.0;
        };
        if source == target || !clustering.contains_cluster(target) {
            return 0.0;
        }
        let before = self.evaluate(graph, clustering);
        let mut after = clustering.clone();
        after
            .move_object(oid, target)
            .expect("object and target exist");
        self.evaluate(graph, &after) - before
    }

    // ------------------------------------------------------------------
    // Aggregate-reusing hooks
    // ------------------------------------------------------------------
    //
    // The serving path maintains one `ClusterAggregates` incrementally and
    // calls these `_with` variants so that verification does not re-scan the
    // graph.  The defaults ignore the aggregates and fall back to the plain
    // (rebuild-as-needed) implementations, so an objective that cannot
    // exploit the materialized state stays exactly as correct — and exactly
    // as slow — as before.  `agg` must describe `(graph, clustering)`.

    /// Full cost of a clustering given its maintained aggregates.
    fn evaluate_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
    ) -> f64 {
        let _ = agg;
        self.evaluate(graph, clustering)
    }

    /// [`ObjectiveFunction::merge_delta`] given maintained aggregates.
    fn merge_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        let _ = agg;
        self.merge_delta(graph, clustering, a, b)
    }

    /// [`ObjectiveFunction::split_delta`] given maintained aggregates.
    fn split_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let _ = agg;
        self.split_delta(graph, clustering, cid, part)
    }

    /// [`ObjectiveFunction::move_delta`] given maintained aggregates.
    fn move_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let _ = agg;
        self.move_delta(graph, clustering, oid, target)
    }
}

/// A wrapper that deliberately disables an objective's aggregate-reusing
/// `_with` overrides: every `_with` call falls through the trait defaults to
/// the inner objective's plain (rebuild-as-needed) implementation.
///
/// This is the reference "slow path" used by the equivalence tests and the
/// `BENCH_dynamic_serving` baseline: running the same serving code once with
/// the bare objective and once wrapped in `SlowPathObjective` must produce
/// the identical clustering, while the full-build counter quantifies how
/// many O(E) rebuilds the incremental path avoided.
pub struct SlowPathObjective {
    inner: Arc<dyn ObjectiveFunction>,
}

impl SlowPathObjective {
    /// Wrap an objective, hiding its `_with` overrides.
    pub fn new(inner: Arc<dyn ObjectiveFunction>) -> Self {
        SlowPathObjective { inner }
    }
}

impl ObjectiveFunction for SlowPathObjective {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn kind(&self) -> ObjectiveKind {
        self.inner.kind()
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        self.inner.evaluate(graph, clustering)
    }

    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        self.inner.merge_delta(graph, clustering, a, b)
    }

    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        self.inner.split_delta(graph, clustering, cid, part)
    }

    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        self.inner.move_delta(graph, clustering, oid, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_threshold() {
        assert!(improves(-1.0));
        assert!(improves(-1e-6));
        assert!(!improves(0.0));
        assert!(!improves(-1e-12));
        assert!(!improves(0.5));
    }

    #[test]
    fn objective_kind_display() {
        assert_eq!(ObjectiveKind::Correlation.to_string(), "correlation");
        assert_eq!(ObjectiveKind::KMeans.to_string(), "k-means");
        assert_eq!(ObjectiveKind::DbIndex.to_string(), "db-index");
        assert_eq!(ObjectiveKind::Density.to_string(), "density");
    }
}
