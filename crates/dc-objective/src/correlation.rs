//! Correlation-clustering objective (Eq. 1 of the paper).
//!
//! The objective is the weighted disagreement cost that Example 4.1
//! evaluates: every pair of objects placed in the *same* cluster contributes
//! `1 − sim`, and every pair placed in *different* clusters contributes
//! `sim`.  Minimizing it balances high intra-cluster similarity against low
//! inter-cluster similarity.
//!
//! The merge and split deltas have closed forms because only the pairs that
//! switch between "intra" and "inter" change their contribution:
//!
//! * merging clusters `A` and `B` changes the `|A|·|B|` cross pairs from
//!   inter to intra, so `Δ = |A|·|B| − 2·S_inter(A, B)`;
//! * splitting `P` out of `C` (leaving `R = C ∖ P`) changes the `|P|·|R|`
//!   pairs from intra to inter, so `Δ = 2·S_inter(P, R) − |P|·|R|`.

use crate::traits::{DecisionLocality, ObjectiveFunction, ObjectiveKind};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;

/// The correlation-clustering disagreement cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct CorrelationObjective;

impl CorrelationObjective {
    /// Sum of stored similarities between `part` and the rest of cluster
    /// `cid` (both sides inside the same current cluster).
    fn cross_sum_within_cluster(
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        let mut sum = 0.0;
        for &o in part {
            for (n, sim) in graph.neighbors(o) {
                if cluster.contains(n) && !part.contains(&n) {
                    sum += sim;
                }
            }
        }
        sum
    }

    /// The disagreement cost read off materialized aggregates: one pass over
    /// the per-cluster sums, no graph edges touched.
    fn cost_from_aggregates(agg: &ClusterAggregates) -> f64 {
        let mut cost = 0.0;
        for cid in agg.cluster_ids() {
            let n = agg.cluster_size(cid);
            let pairs = (n * (n - 1) / 2) as f64;
            cost += pairs - agg.intra_sum(cid);
            for (other, sum) in agg.neighbour_cluster_sums(cid) {
                // Each unordered cluster pair contributes once.
                if other > cid {
                    cost += sum;
                }
            }
        }
        cost
    }
}

impl ObjectiveFunction for CorrelationObjective {
    fn name(&self) -> &'static str {
        "correlation"
    }

    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::Correlation
    }

    // The disagreement cost is a sum over object pairs: every delta is a
    // pure function of the changed clusters' edges, so a proven rejection
    // holds at any global score until the neighbourhood changes.
    fn decision_locality(&self) -> DecisionLocality {
        DecisionLocality::Local
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        // Intra term: for every cluster, the number of member pairs minus the
        // similarity mass inside the cluster (pairs without a stored edge
        // contribute a full unit of disagreement).  Inter term: every stored
        // edge whose endpoints are in different clusters contributes its
        // similarity.  Edges to objects that are not clustered (e.g. not yet
        // processed) are ignored.  Both terms come out of one aggregate build.
        Self::cost_from_aggregates(&ClusterAggregates::new(graph, clustering))
    }

    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(ca), Some(cb)) = (clustering.cluster(a), clustering.cluster(b)) else {
            return 0.0;
        };
        let cross_pairs = (ca.len() * cb.len()) as f64;
        let cross_sim = ClusterAggregates::inter_sum_of_members(graph, ca, cb);
        cross_pairs - 2.0 * cross_sim
    }

    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if part.is_empty() || part.len() >= cluster.len() {
            return 0.0;
        }
        let rest_len = cluster.len() - part.len();
        let cross_pairs = (part.len() * rest_len) as f64;
        let cross_sim = Self::cross_sum_within_cluster(graph, clustering, cid, part);
        2.0 * cross_sim - cross_pairs
    }

    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let Some(source) = clustering.cluster_of(oid) else {
            return 0.0;
        };
        if source == target || !clustering.contains_cluster(target) {
            return 0.0;
        }
        // Leaving the source cluster: the pairs between {oid} and the rest of
        // the source flip from intra to inter.
        let mut part = BTreeSet::new();
        part.insert(oid);
        let source_len = clustering.cluster_size(source);
        let leave_delta = if source_len > 1 {
            self.split_delta(graph, clustering, source, &part)
        } else {
            0.0
        };
        // Joining the target cluster: pairs between {oid} and the target flip
        // from inter to intra.
        let target_cluster = clustering.cluster(target).expect("checked above");
        let mut join_sim = 0.0;
        for (n, sim) in graph.neighbors(oid) {
            if target_cluster.contains(n) {
                join_sim += sim;
            }
        }
        let join_pairs = target_cluster.len() as f64;
        let join_delta = join_pairs - 2.0 * join_sim;
        leave_delta + join_delta
    }

    fn evaluate_with(
        &self,
        agg: &ClusterAggregates,
        _graph: &SimilarityGraph,
        _clustering: &Clustering,
    ) -> f64 {
        Self::cost_from_aggregates(agg)
    }

    fn merge_delta_with(
        &self,
        agg: &ClusterAggregates,
        _graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(ca), Some(cb)) = (clustering.cluster(a), clustering.cluster(b)) else {
            return 0.0;
        };
        // The maintained cross-edge sum turns the closed form into an O(log)
        // lookup: no edges are walked at all.
        let cross_pairs = (ca.len() * cb.len()) as f64;
        cross_pairs - 2.0 * agg.inter_sum(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::fixtures::{
        figure1_edges, figure2_clustering, figure2_graph, graph_from_edges,
    };

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    #[test]
    fn example_4_1_initial_singleton_score_is_5_2() {
        // F(L1) = 0.9*3 + 0.8 + 0.7 + 1 = 5.2 (every object is a singleton,
        // so every edge is an inter-cluster disagreement).
        let graph = figure2_graph();
        let clustering = Clustering::singletons((1..=7).map(oid));
        let obj = CorrelationObjective;
        assert!((obj.evaluate(&graph, &clustering) - 5.2).abs() < 1e-9);
    }

    #[test]
    fn example_4_1_merging_r1_r7_improves_to_4_2() {
        let graph = figure2_graph();
        let mut clustering = Clustering::singletons((1..=7).map(oid));
        let obj = CorrelationObjective;
        let c1 = clustering.cluster_of(oid(1)).unwrap();
        let c7 = clustering.cluster_of(oid(7)).unwrap();
        let delta = obj.merge_delta(&graph, &clustering, c1, c7);
        // 1 cross pair of similarity 1.0 ⇒ Δ = 1 − 2·1 = −1.
        assert!((delta - (-1.0)).abs() < 1e-9);
        clustering.merge(c1, c7).unwrap();
        assert!((obj.evaluate(&graph, &clustering) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn final_figure2_clustering_scores_lower_than_singletons() {
        let graph = figure2_graph();
        let obj = CorrelationObjective;
        let singles = Clustering::singletons((1..=7).map(oid));
        let final_clustering = figure2_clustering();
        assert!(obj.evaluate(&graph, &final_clustering) < obj.evaluate(&graph, &singles));
    }

    #[test]
    fn merge_delta_matches_full_recomputation() {
        let graph = figure2_graph();
        let clustering = Clustering::from_groups([
            vec![oid(1), oid(2)],
            vec![oid(3)],
            vec![oid(4), oid(5)],
            vec![oid(6)],
            vec![oid(7)],
        ])
        .unwrap();
        let obj = CorrelationObjective;
        let before = obj.evaluate(&graph, &clustering);
        for a in clustering.cluster_ids() {
            for b in clustering.cluster_ids() {
                if a >= b {
                    continue;
                }
                let delta = obj.merge_delta(&graph, &clustering, a, b);
                let mut after = clustering.clone();
                after.merge(a, b).unwrap();
                let full = obj.evaluate(&graph, &after) - before;
                assert!((delta - full).abs() < 1e-9, "merge delta mismatch");
            }
        }
    }

    #[test]
    fn split_delta_matches_full_recomputation() {
        let graph = figure2_graph();
        let clustering = Clustering::from_groups([
            vec![oid(1), oid(2), oid(3), oid(7)],
            vec![oid(4), oid(5), oid(6)],
        ])
        .unwrap();
        let obj = CorrelationObjective;
        let before = obj.evaluate(&graph, &clustering);
        for (cid, cluster) in clustering.iter() {
            for o in cluster.iter() {
                let part: BTreeSet<ObjectId> = [o].into_iter().collect();
                if part.len() >= cluster.len() {
                    continue;
                }
                let delta = obj.split_delta(&graph, &clustering, cid, &part);
                let mut after = clustering.clone();
                after.split(cid, &part).unwrap();
                let full = obj.evaluate(&graph, &after) - before;
                assert!((delta - full).abs() < 1e-9, "split delta mismatch for {o}");
            }
        }
    }

    #[test]
    fn move_delta_matches_full_recomputation() {
        let graph = figure2_graph();
        let clustering = Clustering::from_groups([
            vec![oid(1), oid(2), oid(3)],
            vec![oid(4), oid(5), oid(6)],
            vec![oid(7)],
        ])
        .unwrap();
        let obj = CorrelationObjective;
        let before = obj.evaluate(&graph, &clustering);
        for o in clustering.object_ids() {
            for target in clustering.cluster_ids() {
                if clustering.cluster_of(o) == Some(target) {
                    continue;
                }
                let delta = obj.move_delta(&graph, &clustering, o, target);
                let mut after = clustering.clone();
                after.move_object(o, target).unwrap();
                let full = obj.evaluate(&graph, &after) - before;
                assert!((delta - full).abs() < 1e-9, "move delta mismatch for {o}");
            }
        }
    }

    #[test]
    fn degenerate_arguments_return_zero_delta() {
        let graph = figure2_graph();
        let clustering = figure2_clustering();
        let obj = CorrelationObjective;
        let cid = clustering.cluster_ids()[0];
        assert_eq!(obj.merge_delta(&graph, &clustering, cid, cid), 0.0);
        assert_eq!(
            obj.merge_delta(&graph, &clustering, cid, ClusterId::new(424242)),
            0.0
        );
        assert_eq!(
            obj.split_delta(&graph, &clustering, cid, &BTreeSet::new()),
            0.0
        );
    }

    #[test]
    fn unclustered_neighbors_are_ignored_in_evaluation() {
        // The graph knows 7 objects but the clustering only covers 5: edges
        // to r6/r7 must not contribute.
        let graph = figure2_graph();
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap();
        let obj = CorrelationObjective;
        // Intra: C1 misses nothing (3 pairs at 0.9 ⇒ 3 − 2.7 = 0.3);
        // C2 has one pair at 0.8 ⇒ 0.2.  No inter edges between C1 and C2.
        assert!((obj.evaluate(&graph, &clustering) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn kind_and_name() {
        let obj = CorrelationObjective;
        assert_eq!(obj.kind(), ObjectiveKind::Correlation);
        assert_eq!(obj.name(), "correlation");
    }

    #[test]
    fn merging_dissimilar_clusters_is_not_an_improvement() {
        let graph = graph_from_edges(4, &figure1_edges());
        let clustering = Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(4)]]).unwrap();
        let obj = CorrelationObjective;
        let a = clustering.cluster_of(oid(1)).unwrap();
        let b = clustering.cluster_of(oid(4)).unwrap();
        assert!(obj.merge_delta(&graph, &clustering, a, b) > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dc_similarity::fixtures::graph_from_edges;
    use proptest::prelude::*;

    fn arbitrary_edges() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
        proptest::collection::vec(
            (1u64..=8, 1u64..=8, 0.05f64..1.0).prop_filter("no self loops", |(a, b, _)| a != b),
            0..16,
        )
    }

    fn arbitrary_partition() -> impl Strategy<Value = Vec<u64>> {
        // assignment[i] = group of object i+1, groups in 0..4
        proptest::collection::vec(0u64..4, 8)
    }

    fn clustering_from_assignment(assignment: &[u64]) -> Clustering {
        let mut groups: std::collections::BTreeMap<u64, Vec<ObjectId>> =
            std::collections::BTreeMap::new();
        for (i, &g) in assignment.iter().enumerate() {
            groups
                .entry(g)
                .or_default()
                .push(ObjectId::new(i as u64 + 1));
        }
        Clustering::from_groups(groups.into_values()).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn deltas_agree_with_full_recomputation(
            edges in arbitrary_edges(),
            assignment in arbitrary_partition(),
        ) {
            let graph = graph_from_edges(8, &edges);
            let clustering = clustering_from_assignment(&assignment);
            let obj = CorrelationObjective;
            let before = obj.evaluate(&graph, &clustering);

            let cids = clustering.cluster_ids();
            if cids.len() >= 2 {
                let (a, b) = (cids[0], cids[1]);
                let delta = obj.merge_delta(&graph, &clustering, a, b);
                let mut after = clustering.clone();
                after.merge(a, b).unwrap();
                prop_assert!((delta - (obj.evaluate(&graph, &after) - before)).abs() < 1e-9);
            }
            // Split the first splittable cluster at its first member.
            for (cid, cluster) in clustering.iter() {
                if cluster.len() >= 2 {
                    let first = cluster.iter().next().unwrap();
                    let part: BTreeSet<ObjectId> = [first].into_iter().collect();
                    let delta = obj.split_delta(&graph, &clustering, cid, &part);
                    let mut after = clustering.clone();
                    after.split(cid, &part).unwrap();
                    prop_assert!((delta - (obj.evaluate(&graph, &after) - before)).abs() < 1e-9);
                    break;
                }
            }
        }

        #[test]
        fn objective_is_nonnegative(
            edges in arbitrary_edges(),
            assignment in arbitrary_partition(),
        ) {
            let graph = graph_from_edges(8, &edges);
            let clustering = clustering_from_assignment(&assignment);
            prop_assert!(CorrelationObjective.evaluate(&graph, &clustering) >= -1e-9);
        }
    }
}
