//! Davies–Bouldin-style index adapted to sparse similarity graphs.
//!
//! The paper's most challenging workload is DB-index clustering over
//! record-linkage data (§7.1): unlike correlation clustering it has none of
//! the locality/monotonicity properties that specialized incremental methods
//! exploit, which is exactly why a learned dynamic method is attractive.
//!
//! The classical DB index is defined over Euclidean space as the mean over
//! clusters of `max_j (S_i + S_j) / M_ij` (scatter over separation).  Applied
//! verbatim to a record-linkage similarity graph that ratio is degenerate:
//! the all-singletons clustering has zero scatter everywhere and therefore a
//! perfect score of 0, so no batch search seeded from singletons would ever
//! merge anything.  Following the spirit of the record-linkage adaptation the
//! paper cites (Gruenheid et al.), we use a non-degenerate per-cluster
//! badness that keeps both Davies–Bouldin ingredients:
//!
//! * the **scatter** of a cluster, `S_i = 1 − intra_avg(C_i)` — cohesive
//!   clusters have low scatter, singletons have scatter 0;
//! * the **confusability** of a cluster, `T_i = max_j inter_avg(C_i, C_j)` —
//!   the strongest average attraction to any other cluster (0 when the
//!   cluster shares no edge with any other cluster);
//!
//! and scores the clustering as `DB = (1/k) Σ_i (S_i + T_i)`.  Splitting true
//! entities keeps `T_i` high (the duplicates still attract each other),
//! lumping unrelated records keeps `S_i` high, and the correctly resolved
//! clustering minimizes both.  Only cluster pairs that share at least one
//! stored edge are examined, so evaluation is proportional to the number of
//! edges.  Lower is better.
//!
//! This substitution is recorded in `DESIGN.md` (the exact objective used by
//! the original paper is not published; any DB-index-like objective without
//! locality/monotonicity exercises the same DynamicC code paths).

use crate::traits::{DecisionLocality, ObjectiveFunction, ObjectiveKind};
use dc_similarity::{ClusterAggregates, SimilarityGraph};
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;

/// Similarity-graph Davies–Bouldin-style index (lower is better).
#[derive(Debug, Clone, Copy, Default)]
pub struct DbIndexObjective;

impl DbIndexObjective {
    fn scatter(agg: &ClusterAggregates, cid: ClusterId) -> f64 {
        1.0 - agg.intra_avg(cid)
    }

    /// Per-cluster badness: scatter plus the strongest average attraction to
    /// any neighbouring cluster.
    fn cluster_badness(agg: &ClusterAggregates, cid: ClusterId) -> f64 {
        let scatter = Self::scatter(agg, cid);
        let size = agg.cluster_size(cid) as f64;
        if size == 0.0 {
            return 0.0;
        }
        let mut confusability: f64 = 0.0;
        for (other, sum) in agg.neighbour_cluster_sums(cid) {
            let other_size = agg.cluster_size(other) as f64;
            if other_size == 0.0 {
                continue;
            }
            let inter_avg = sum / (size * other_size);
            confusability = confusability.max(inter_avg);
        }
        scatter + confusability
    }

    /// The index read off materialized aggregates alone.
    fn index_from_aggregates(agg: &ClusterAggregates) -> f64 {
        let k = agg.cluster_count();
        if k == 0 {
            return 0.0;
        }
        let sum: f64 = agg
            .cluster_ids()
            .into_iter()
            .map(|cid| Self::cluster_badness(agg, cid))
            .sum();
        sum / k as f64
    }

    /// A cluster id guaranteed not to collide with any id tracked by `agg`
    /// (`offset` distinguishes several scratch ids in one simulation).
    fn scratch_id(agg: &ClusterAggregates, offset: u64) -> ClusterId {
        let max = agg.max_cluster_id().map_or(0, ClusterId::raw);
        ClusterId::new(max + 1 + offset)
    }
}

impl ObjectiveFunction for DbIndexObjective {
    fn name(&self) -> &'static str {
        "db-index"
    }

    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::DbIndex
    }

    // The index is a *mean* over clusters, `DB = S / k` with `S` the badness
    // sum: a candidate change's delta couples to the global score through
    // the denominator even when its local badness contribution is frozen.
    // Write the change's exact badness-sum contribution as Δ (the change to
    // `S` from the affected clusters and their neighbours — a pure function
    // of the changed neighbourhood).  Then for a merge (k → k−1):
    //
    //   δ = (S + Δ)/(k−1) − S/k  ⇒  Δ = δ·(k−1) − DB,
    //
    // and at any later state with score DB′ the same merge's delta is
    // `(DB′ + Δ)/(k′−1)`: the rejection `δ′ ≥ −ε` is guaranteed while
    // `DB′ ≥ −Δ = DB − δ·(k−1)` — the floor reported below.  For a split
    // (k → k+1) the algebra mirrors: `Δ = δ·(k+1) + DB`, the later delta is
    // `(Δ − DB′)/(k′+1)`, and the rejection holds while
    // `DB′ ≤ Δ = DB + δ·(k+1)` — the ceiling.  Outside those intervals a
    // drifted mean really can flip the decision (a merge that looked bad at
    // a low mean improves it once the mean is high, and vice versa for
    // splits), which is exactly what incremental repair must re-evaluate.

    fn decision_locality(&self) -> DecisionLocality {
        DecisionLocality::GlobalMean
    }

    fn merge_rejection_score_floor(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        score - delta * (clusters as f64 - 1.0)
    }

    fn split_rejection_score_ceil(&self, delta: f64, score: f64, clusters: usize) -> f64 {
        score + delta * (clusters as f64 + 1.0)
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        Self::index_from_aggregates(&ClusterAggregates::new(graph, clustering))
    }

    // The index couples clusters through the per-cluster max and the global
    // mean, so the plain deltas fall back to the default trait implementation
    // (clone + re-evaluate).  Evaluation walks only stored edges, which keeps
    // even the fallback affordable; the paper makes the same observation that
    // DB-index has no exploitable locality.  The `_with` variants below
    // recover locality from the *aggregates*: the candidate change is
    // simulated on a cloned aggregate (O(aggregate size), no edge walks, no
    // similarity recomputation) instead of rebuilding from the graph twice.

    fn evaluate_with(
        &self,
        agg: &ClusterAggregates,
        _graph: &SimilarityGraph,
        _clustering: &Clustering,
    ) -> f64 {
        Self::index_from_aggregates(agg)
    }

    fn merge_delta_with(
        &self,
        agg: &ClusterAggregates,
        _graph: &SimilarityGraph,
        _clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b || !agg.contains_cluster(a) || !agg.contains_cluster(b) {
            return 0.0;
        }
        let before = Self::index_from_aggregates(agg);
        let mut after = agg.clone();
        after.apply_merge(a, b, Self::scratch_id(agg, 0));
        Self::index_from_aggregates(&after) - before
    }

    fn split_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if part.is_empty() || part.len() >= cluster.len() {
            return 0.0;
        }
        let rest: BTreeSet<ObjectId> = cluster.members().difference(part).copied().collect();
        let before = Self::index_from_aggregates(agg);
        let mut after = agg.clone();
        let part_id = Self::scratch_id(agg, 0);
        let rest_id = Self::scratch_id(agg, 1);
        after.apply_split_members(graph, clustering, cid, part_id, part, rest_id, &rest);
        Self::index_from_aggregates(&after) - before
    }

    fn move_delta_with(
        &self,
        agg: &ClusterAggregates,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let Some(source) = clustering.cluster_of(oid) else {
            return 0.0;
        };
        if source == target || !agg.contains_cluster(target) {
            return 0.0;
        }
        let before = Self::index_from_aggregates(agg);
        let mut after = agg.clone();
        after.apply_move(graph, clustering, oid, source, target);
        Self::index_from_aggregates(&after) - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::ObjectiveFunction;
    use dc_similarity::fixtures::graph_from_edges;
    use dc_types::ObjectId;
    use std::collections::BTreeSet;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Two clear entities: {1,2,3} mutually similar, {4,5} mutually similar,
    /// and a weak spurious edge between the groups.
    fn two_entity_graph() -> SimilarityGraph {
        graph_from_edges(
            5,
            &[
                (1, 2, 0.95),
                (1, 3, 0.9),
                (2, 3, 0.92),
                (4, 5, 0.88),
                (3, 4, 0.15),
            ],
        )
    }

    fn good_clustering() -> Clustering {
        Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5)]]).unwrap()
    }

    #[test]
    fn correct_grouping_beats_everything_in_one_cluster() {
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        let lumped =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4), oid(5)]]).unwrap();
        assert!(obj.evaluate(&g, &good_clustering()) < obj.evaluate(&g, &lumped));
    }

    #[test]
    fn correct_grouping_beats_singletons_with_strong_edges() {
        // All-singletons has zero scatter but every duplicate still strongly
        // attracts its twin, so the confusability term dominates.
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        let singles = Clustering::singletons((1..=5).map(oid));
        assert!(obj.evaluate(&g, &good_clustering()) < obj.evaluate(&g, &singles));
    }

    #[test]
    fn score_is_bounded_between_zero_and_two() {
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        for clustering in [
            good_clustering(),
            Clustering::singletons((1..=5).map(oid)),
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4), oid(5)]]).unwrap(),
        ] {
            let s = obj.evaluate(&g, &clustering);
            assert!((0.0..=2.0).contains(&s), "score {s} out of range");
        }
    }

    #[test]
    fn empty_clustering_scores_zero() {
        let g = two_entity_graph();
        assert_eq!(DbIndexObjective.evaluate(&g, &Clustering::new()), 0.0);
    }

    #[test]
    fn singleton_only_clustering_without_edges_scores_zero() {
        let g = graph_from_edges(3, &[]);
        let singles = Clustering::singletons((1..=3).map(oid));
        assert_eq!(DbIndexObjective.evaluate(&g, &singles), 0.0);
    }

    #[test]
    fn merging_a_true_entity_improves_and_delta_matches_recomputation() {
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        let clustering =
            Clustering::from_groups([vec![oid(1), oid(2)], vec![oid(3)], vec![oid(4), oid(5)]])
                .unwrap();
        let before = obj.evaluate(&g, &clustering);
        let a = clustering.cluster_of(oid(1)).unwrap();
        let b = clustering.cluster_of(oid(3)).unwrap();
        let delta = obj.merge_delta(&g, &clustering, a, b);
        let mut after = clustering.clone();
        after.merge(a, b).unwrap();
        assert!((delta - (obj.evaluate(&g, &after) - before)).abs() < 1e-12);
        assert!(delta < 0.0, "merging a true entity should improve DB-index");
    }

    #[test]
    fn splitting_an_incoherent_cluster_improves_the_index() {
        // {1,2,3,4,5} in one cluster: objects 4,5 barely relate to 1,2,3.
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        let lumped =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4), oid(5)]]).unwrap();
        let cid = lumped.cluster_ids()[0];
        let part: BTreeSet<ObjectId> = [oid(4), oid(5)].into_iter().collect();
        let delta = obj.split_delta(&g, &lumped, cid, &part);
        assert!(delta < 0.0);
    }

    #[test]
    fn splitting_a_true_entity_is_not_an_improvement() {
        let g = two_entity_graph();
        let obj = DbIndexObjective;
        let clustering = good_clustering();
        let cid = clustering.cluster_of(oid(1)).unwrap();
        let part: BTreeSet<ObjectId> = [oid(1)].into_iter().collect();
        assert!(obj.split_delta(&g, &clustering, cid, &part) > 0.0);
    }

    #[test]
    fn kind_and_name() {
        assert_eq!(DbIndexObjective.kind(), ObjectiveKind::DbIndex);
        assert_eq!(DbIndexObjective.name(), "db-index");
        assert_eq!(
            DbIndexObjective.decision_locality(),
            crate::traits::DecisionLocality::GlobalMean
        );
    }

    /// The same candidate pair (objects 1, 2 joined by a 0.45 edge, no other
    /// neighbours) embedded in two graphs that differ only in far-away
    /// clusters: incoherent remote pairs push the mean up, cohesive ones
    /// pull it down.  The pair's local badness contribution is identical in
    /// both, so the merge/split decisions flip purely on the global mean —
    /// and the flip point must be the floor/ceiling the objective reports.
    fn pair_with_remote_mean(remote_weight: f64) -> (SimilarityGraph, Clustering) {
        let mut edges = vec![(1, 2, 0.45)];
        for i in 0..8u64 {
            edges.push((3 + 2 * i, 4 + 2 * i, remote_weight));
        }
        let graph = graph_from_edges(18, &edges);
        let mut groups = vec![vec![oid(1)], vec![oid(2)]];
        for i in 0..8u64 {
            groups.push(vec![oid(3 + 2 * i), oid(4 + 2 * i)]);
        }
        (graph, Clustering::from_groups(groups).unwrap())
    }

    #[test]
    fn merge_rejection_floor_marks_where_a_drifted_mean_flips_the_decision() {
        let obj = DbIndexObjective;
        // High mean (remote pairs are incoherent): the merge is rejected.
        let (g_high, c_high) = pair_with_remote_mean(0.55);
        let a = c_high.cluster_of(oid(1)).unwrap();
        let b = c_high.cluster_of(oid(2)).unwrap();
        let score_high = obj.evaluate(&g_high, &c_high);
        let delta_high = obj.merge_delta(&g_high, &c_high, a, b);
        assert!(!crate::improves(delta_high), "rejected at the high mean");
        let floor = obj.merge_rejection_score_floor(delta_high, score_high, c_high.cluster_count());
        assert!(
            score_high >= floor,
            "the proof state is inside its interval"
        );

        // Low mean (remote pairs are cohesive): the identical local merge
        // now improves — and the low score is indeed below the floor.
        let (g_low, c_low) = pair_with_remote_mean(0.95);
        let a = c_low.cluster_of(oid(1)).unwrap();
        let b = c_low.cluster_of(oid(2)).unwrap();
        let score_low = obj.evaluate(&g_low, &c_low);
        let delta_low = obj.merge_delta(&g_low, &c_low, a, b);
        assert!(score_low < floor, "the flipped state is outside the floor");
        assert!(crate::improves(delta_low), "the drifted mean flips it");
    }

    #[test]
    fn split_rejection_ceiling_marks_where_a_drifted_mean_flips_the_decision() {
        let obj = DbIndexObjective;
        let part: BTreeSet<ObjectId> = [oid(1)].into_iter().collect();
        let pair_cluster = |weight: f64| {
            let mut edges = vec![(1, 2, 0.45)];
            for i in 0..8u64 {
                edges.push((3 + 2 * i, 4 + 2 * i, weight));
            }
            let graph = graph_from_edges(18, &edges);
            let mut groups = vec![vec![oid(1), oid(2)]];
            for i in 0..8u64 {
                groups.push(vec![oid(3 + 2 * i), oid(4 + 2 * i)]);
            }
            (graph, Clustering::from_groups(groups).unwrap())
        };

        // Low mean: keeping the weak pair together is still the best option.
        let (g_low, c_low) = pair_cluster(0.95);
        let cid = c_low.cluster_of(oid(1)).unwrap();
        let score_low = obj.evaluate(&g_low, &c_low);
        let delta_low = obj.split_delta(&g_low, &c_low, cid, &part);
        assert!(!crate::improves(delta_low), "rejected at the low mean");
        let ceil = obj.split_rejection_score_ceil(delta_low, score_low, c_low.cluster_count());
        assert!(score_low <= ceil, "the proof state is inside its interval");

        // High mean: the identical local split now improves the mean.
        let (g_high, c_high) = pair_cluster(0.55);
        let cid = c_high.cluster_of(oid(1)).unwrap();
        let score_high = obj.evaluate(&g_high, &c_high);
        let delta_high = obj.split_delta(&g_high, &c_high, cid, &part);
        assert!(
            score_high > ceil,
            "the flipped state is outside the ceiling"
        );
        assert!(crate::improves(delta_high), "the drifted mean flips it");
    }
}
