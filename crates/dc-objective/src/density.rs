//! Density-consistency cost for DBSCAN-style clusterings.
//!
//! DBSCAN has no objective function, so DynamicC cannot verify its proposed
//! merges/splits by "does the objective improve?" the way it does for
//! objective-based clustering.  §7.2.1 of the paper resolves this by judging
//! a proposed change by whether the *previously established core points stay
//! stable* — i.e. whether the neighbourhood structure that made a point a
//! core point still lies inside a single cluster.
//!
//! [`DensityObjective`] turns that idea into a cost (lower is better):
//!
//! * for every **core point** (an object with at least `min_pts` stored
//!   neighbours — the similarity graph's edge threshold plays the role of
//!   the `ε` radius), each neighbour assigned to a *different* cluster adds
//!   1 to the cost (a density-reachable point was separated from its core);
//! * every **stored edge inside a cluster whose endpoints are both
//!   non-core** adds a small cost `NOISE_PENALTY`, discouraging clusters
//!   glued together purely by sparse noise points.
//!
//! With this cost, merging two density-connected fragments of one DBSCAN
//! cluster strictly improves the score, splitting a dense cluster worsens
//! it, and merging clusters with no shared edges changes nothing (and is
//! therefore rejected by the strict-improvement rule).

use crate::traits::{DecisionLocality, ObjectiveFunction, ObjectiveKind};
use dc_similarity::SimilarityGraph;
use dc_types::{Clustering, ObjectId};

/// Cost added per intra-cluster edge between two non-core points.
const NOISE_PENALTY: f64 = 0.25;

/// Density-consistency cost (lower is better).
#[derive(Debug, Clone, Copy)]
pub struct DensityObjective {
    /// Minimum number of neighbours (at or above the graph's edge threshold)
    /// for a point to count as a core point; mirrors DBSCAN's `minPts` minus
    /// one (the point itself is not stored as its own neighbour).
    pub min_pts: usize,
}

impl DensityObjective {
    /// Create a density objective with the given core-point threshold.
    pub fn new(min_pts: usize) -> Self {
        assert!(min_pts >= 1, "min_pts must be at least 1");
        DensityObjective { min_pts }
    }

    /// Whether `oid` is a core point in the graph under this configuration.
    pub fn is_core(&self, graph: &SimilarityGraph, oid: ObjectId) -> bool {
        graph.degree(oid) >= self.min_pts
    }
}

impl Default for DensityObjective {
    fn default() -> Self {
        DensityObjective { min_pts: 2 }
    }
}

impl ObjectiveFunction for DensityObjective {
    fn name(&self) -> &'static str {
        "density-consistency"
    }

    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::Density
    }

    // The density-consistency cost is a sum of per-edge and per-object
    // penalties (core-point status depends on the graph, not the
    // clustering), so deltas are purely local and proven rejections hold at
    // any global score.
    fn decision_locality(&self) -> DecisionLocality {
        DecisionLocality::Local
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        let mut cost = 0.0;
        for o in clustering.object_ids() {
            let Some(co) = clustering.cluster_of(o) else {
                continue;
            };
            let o_core = self.is_core(graph, o);
            for (n, _sim) in graph.neighbors(o) {
                let Some(cn) = clustering.cluster_of(n) else {
                    continue;
                };
                if o_core && cn != co {
                    // A density-reachable neighbour was cut off from its core.
                    cost += 1.0;
                }
                if !o_core && !self.is_core(graph, n) && cn == co && n > o {
                    // Intra-cluster edge supported only by non-core points.
                    cost += NOISE_PENALTY;
                }
            }
        }
        cost
    }
    // Deltas use the default clone-and-re-evaluate implementation; density
    // clusterings in the evaluation are small enough (per affected
    // neighbourhood) that this is not a bottleneck, and it keeps the
    // verification semantics exactly equal to "did the full score improve".
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::improves;
    use dc_similarity::fixtures::graph_from_edges;
    use std::collections::BTreeSet;

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// A dense 4-clique (1..4) plus an isolated pair (5,6).
    fn clique_plus_pair() -> SimilarityGraph {
        graph_from_edges(
            6,
            &[
                (1, 2, 0.9),
                (1, 3, 0.9),
                (1, 4, 0.9),
                (2, 3, 0.9),
                (2, 4, 0.9),
                (3, 4, 0.9),
                (5, 6, 0.8),
            ],
        )
    }

    #[test]
    fn core_point_detection() {
        let g = clique_plus_pair();
        let obj = DensityObjective::new(2);
        assert!(obj.is_core(&g, oid(1)));
        assert!(!obj.is_core(&g, oid(5)));
    }

    #[test]
    fn keeping_dense_clusters_together_is_free() {
        let g = clique_plus_pair();
        let obj = DensityObjective::new(2);
        let good =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)], vec![oid(5), oid(6)]])
                .unwrap();
        // The pair {5,6} is non-core ↔ non-core, so it incurs only the small
        // noise penalty; the clique costs nothing.
        let score = obj.evaluate(&g, &good);
        assert!(score <= 0.25 + 1e-12);
    }

    #[test]
    fn splitting_a_dense_cluster_is_penalized() {
        let g = clique_plus_pair();
        let obj = DensityObjective::new(2);
        let split = Clustering::from_groups([
            vec![oid(1), oid(2)],
            vec![oid(3), oid(4)],
            vec![oid(5), oid(6)],
        ])
        .unwrap();
        let good =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)], vec![oid(5), oid(6)]])
                .unwrap();
        assert!(obj.evaluate(&g, &split) > obj.evaluate(&g, &good));
    }

    #[test]
    fn merging_density_connected_fragments_improves() {
        let g = clique_plus_pair();
        let obj = DensityObjective::new(2);
        let fragmented = Clustering::from_groups([
            vec![oid(1), oid(2)],
            vec![oid(3), oid(4)],
            vec![oid(5), oid(6)],
        ])
        .unwrap();
        let a = fragmented.cluster_of(oid(1)).unwrap();
        let b = fragmented.cluster_of(oid(3)).unwrap();
        let delta = obj.merge_delta(&g, &fragmented, a, b);
        assert!(improves(delta));
    }

    #[test]
    fn merging_unrelated_clusters_is_not_an_improvement() {
        let g = clique_plus_pair();
        let obj = DensityObjective::new(2);
        let good =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4)], vec![oid(5), oid(6)]])
                .unwrap();
        let a = good.cluster_of(oid(1)).unwrap();
        let b = good.cluster_of(oid(5)).unwrap();
        let delta = obj.merge_delta(&g, &good, a, b);
        assert!(
            !improves(delta),
            "no shared edges ⇒ no improvement, delta = {delta}"
        );
    }

    #[test]
    fn splitting_out_a_noise_point_can_improve() {
        // Attach a noise point 7 to the clique by a single edge and put it in
        // the clique's cluster: the core points 1..4 each see no defect, but
        // point 7's membership costs nothing under this objective, so the
        // split must not *worsen* the score.
        let g = graph_from_edges(
            7,
            &[
                (1, 2, 0.9),
                (1, 3, 0.9),
                (1, 4, 0.9),
                (2, 3, 0.9),
                (2, 4, 0.9),
                (3, 4, 0.9),
                (4, 7, 0.3),
            ],
        );
        let obj = DensityObjective::new(2);
        let lumped =
            Clustering::from_groups([vec![oid(1), oid(2), oid(3), oid(4), oid(7)]]).unwrap();
        let cid = lumped.cluster_ids()[0];
        let part: BTreeSet<ObjectId> = [oid(7)].into_iter().collect();
        let delta = obj.split_delta(&g, &lumped, cid, &part);
        // Splitting the noise point separates it from core point 4 ⇒ cost 1,
        // so this particular split is *not* an improvement — the verification
        // step would veto it, which mirrors DBSCAN keeping border points.
        assert!(delta >= 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_min_pts_is_rejected() {
        DensityObjective::new(0);
    }

    #[test]
    fn kind_and_name() {
        let obj = DensityObjective::default();
        assert_eq!(obj.kind(), ObjectiveKind::Density);
        assert_eq!(obj.name(), "density-consistency");
        assert_eq!(obj.min_pts, 2);
    }
}
