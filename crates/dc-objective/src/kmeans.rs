//! The k-means (within-cluster sum of squares) objective.
//!
//! The paper evaluates DynamicC on k-means clustering by pairing the k-means
//! objective with the general hill-climbing batch algorithm (§7.1): the
//! objective itself is just the within-cluster sum of squared Euclidean
//! distances to the cluster centroid.  The number of clusters `k` is a
//! property of the *search*, not of the objective — the search procedures in
//! `dc-batch` keep `k` fixed, while DynamicC's verification only needs the
//! score of a proposed change.
//!
//! Deltas use the standard Ward-style identities:
//!
//! * merging clusters `A` and `B` adds
//!   `|A|·|B| / (|A| + |B|) · ‖μ_A − μ_B‖²` to the cost;
//! * splitting `P` out of `C` (rest `R`) removes
//!   `|P|·|R| / (|P| + |R|) · ‖μ_P − μ_R‖²`.

use crate::traits::{DecisionLocality, ObjectiveFunction, ObjectiveKind};
use dc_similarity::SimilarityGraph;
use dc_types::{ClusterId, Clustering, ObjectId};
use std::collections::BTreeSet;

/// Within-cluster sum of squared distances to the centroid.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansObjective;

impl KMeansObjective {
    /// The centroid of a set of objects' feature vectors (objects without a
    /// vector contribute a zero vector of the common dimensionality).
    pub fn centroid<'a, I>(graph: &SimilarityGraph, members: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a ObjectId>,
    {
        let mut sum: Vec<f64> = Vec::new();
        let mut count = 0usize;
        for &o in members {
            let v = graph.record(o).map(|r| r.vector()).unwrap_or(&[]);
            if v.len() > sum.len() {
                sum.resize(v.len(), 0.0);
            }
            for (i, &x) in v.iter().enumerate() {
                sum[i] += x;
            }
            count += 1;
        }
        if count > 0 {
            for x in &mut sum {
                *x /= count as f64;
            }
        }
        sum
    }

    /// Sum of squared distances of the members to their centroid.
    pub fn sse_of_members<'a, I>(graph: &SimilarityGraph, members: I) -> f64
    where
        I: IntoIterator<Item = &'a ObjectId> + Clone,
    {
        let centroid = Self::centroid(graph, members.clone());
        let mut sse = 0.0;
        for &o in members {
            let v = graph.record(o).map(|r| r.vector()).unwrap_or(&[]);
            let dims = centroid.len().max(v.len());
            for i in 0..dims {
                let x = v.get(i).copied().unwrap_or(0.0);
                let c = centroid.get(i).copied().unwrap_or(0.0);
                sse += (x - c) * (x - c);
            }
        }
        sse
    }

    fn sse_of_cluster(graph: &SimilarityGraph, clustering: &Clustering, cid: ClusterId) -> f64 {
        match clustering.cluster(cid) {
            Some(cluster) => {
                let members: Vec<ObjectId> = cluster.iter().collect();
                Self::sse_of_members(graph, members.iter())
            }
            None => 0.0,
        }
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        let dims = a.len().max(b.len());
        let mut d = 0.0;
        for i in 0..dims {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            d += (x - y) * (x - y);
        }
        d
    }
}

impl ObjectiveFunction for KMeansObjective {
    fn name(&self) -> &'static str {
        "k-means-sse"
    }

    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::KMeans
    }

    // WCSS is a sum of per-cluster scatter terms: deltas are purely local
    // (the Ward identity below touches only the two clusters involved), so
    // proven rejections are valid at any global score.
    fn decision_locality(&self) -> DecisionLocality {
        DecisionLocality::Local
    }

    fn evaluate(&self, graph: &SimilarityGraph, clustering: &Clustering) -> f64 {
        clustering
            .cluster_ids()
            .into_iter()
            .map(|cid| Self::sse_of_cluster(graph, clustering, cid))
            .sum()
    }

    fn merge_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        a: ClusterId,
        b: ClusterId,
    ) -> f64 {
        if a == b {
            return 0.0;
        }
        let (Some(ca), Some(cb)) = (clustering.cluster(a), clustering.cluster(b)) else {
            return 0.0;
        };
        let ma: Vec<ObjectId> = ca.iter().collect();
        let mb: Vec<ObjectId> = cb.iter().collect();
        let mu_a = Self::centroid(graph, ma.iter());
        let mu_b = Self::centroid(graph, mb.iter());
        let na = ma.len() as f64;
        let nb = mb.len() as f64;
        na * nb / (na + nb) * Self::squared_distance(&mu_a, &mu_b)
    }

    fn split_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        cid: ClusterId,
        part: &BTreeSet<ObjectId>,
    ) -> f64 {
        let Some(cluster) = clustering.cluster(cid) else {
            return 0.0;
        };
        if part.is_empty() || part.len() >= cluster.len() {
            return 0.0;
        }
        let rest: Vec<ObjectId> = cluster.iter().filter(|o| !part.contains(o)).collect();
        let part_vec: Vec<ObjectId> = part.iter().copied().collect();
        let mu_p = Self::centroid(graph, part_vec.iter());
        let mu_r = Self::centroid(graph, rest.iter());
        let np = part_vec.len() as f64;
        let nr = rest.len() as f64;
        -(np * nr / (np + nr)) * Self::squared_distance(&mu_p, &mu_r)
    }

    fn move_delta(
        &self,
        graph: &SimilarityGraph,
        clustering: &Clustering,
        oid: ObjectId,
        target: ClusterId,
    ) -> f64 {
        let Some(source) = clustering.cluster_of(oid) else {
            return 0.0;
        };
        if source == target || !clustering.contains_cluster(target) {
            return 0.0;
        }
        // Recompute only the two affected clusters.
        let before = Self::sse_of_cluster(graph, clustering, source)
            + Self::sse_of_cluster(graph, clustering, target);
        let source_members: Vec<ObjectId> = clustering
            .cluster(source)
            .expect("source exists")
            .iter()
            .filter(|&o| o != oid)
            .collect();
        let mut target_members: Vec<ObjectId> = clustering
            .cluster(target)
            .expect("target exists")
            .iter()
            .collect();
        target_members.push(oid);
        let after = Self::sse_of_members(graph, source_members.iter())
            + Self::sse_of_members(graph, target_members.iter());
        after - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_similarity::graph::GraphConfig;
    use dc_types::{Dataset, RecordBuilder};

    fn oid(raw: u64) -> ObjectId {
        ObjectId::new(raw)
    }

    /// Graph over 6 points: two tight groups around (0,0) and (10,10).
    fn two_blob_graph() -> SimilarityGraph {
        let mut ds = Dataset::new();
        let points = [
            (1u64, vec![0.0, 0.0]),
            (2, vec![1.0, 0.0]),
            (3, vec![0.0, 1.0]),
            (4, vec![10.0, 10.0]),
            (5, vec![11.0, 10.0]),
            (6, vec![10.0, 11.0]),
        ];
        for (id, v) in points {
            ds.insert_with_id(oid(id), RecordBuilder::new().vector(v).build())
                .unwrap();
        }
        SimilarityGraph::build(GraphConfig::numeric_euclidean(2.0, 4.0, 2, 0.05), &ds)
    }

    fn good_clustering() -> Clustering {
        Clustering::from_groups([vec![oid(1), oid(2), oid(3)], vec![oid(4), oid(5), oid(6)]])
            .unwrap()
    }

    fn bad_clustering() -> Clustering {
        Clustering::from_groups([vec![oid(1), oid(4), oid(3)], vec![oid(2), oid(5), oid(6)]])
            .unwrap()
    }

    #[test]
    fn centroid_and_sse() {
        let g = two_blob_graph();
        let members = [oid(1), oid(2), oid(3)];
        let c = KMeansObjective::centroid(&g, members.iter());
        assert!((c[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((c[1] - 1.0 / 3.0).abs() < 1e-9);
        let sse = KMeansObjective::sse_of_members(&g, members.iter());
        assert!(sse > 0.0 && sse < 2.0);
        // Single point has zero SSE.
        assert_eq!(KMeansObjective::sse_of_members(&g, [oid(1)].iter()), 0.0);
    }

    #[test]
    fn correct_grouping_scores_lower_than_shuffled_grouping() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        assert!(obj.evaluate(&g, &good_clustering()) < obj.evaluate(&g, &bad_clustering()));
    }

    #[test]
    fn merge_delta_matches_full_recomputation() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        let clustering = Clustering::from_groups([
            vec![oid(1), oid(2)],
            vec![oid(3)],
            vec![oid(4), oid(5), oid(6)],
        ])
        .unwrap();
        let before = obj.evaluate(&g, &clustering);
        for a in clustering.cluster_ids() {
            for b in clustering.cluster_ids() {
                if a >= b {
                    continue;
                }
                let delta = obj.merge_delta(&g, &clustering, a, b);
                let mut after = clustering.clone();
                after.merge(a, b).unwrap();
                let full = obj.evaluate(&g, &after) - before;
                assert!((delta - full).abs() < 1e-9, "merge delta mismatch");
                // Merging never reduces the k-means cost.
                assert!(delta >= -1e-9);
            }
        }
    }

    #[test]
    fn split_delta_matches_full_recomputation_and_is_nonpositive() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        let clustering = bad_clustering();
        let before = obj.evaluate(&g, &clustering);
        for (cid, cluster) in clustering.iter() {
            for o in cluster.iter() {
                if cluster.len() < 2 {
                    continue;
                }
                let part: BTreeSet<ObjectId> = [o].into_iter().collect();
                let delta = obj.split_delta(&g, &clustering, cid, &part);
                let mut after = clustering.clone();
                after.split(cid, &part).unwrap();
                let full = obj.evaluate(&g, &after) - before;
                assert!((delta - full).abs() < 1e-9, "split delta mismatch");
                assert!(delta <= 1e-9);
            }
        }
    }

    #[test]
    fn move_delta_matches_full_recomputation() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        let clustering = bad_clustering();
        let before = obj.evaluate(&g, &clustering);
        for o in clustering.object_ids() {
            for target in clustering.cluster_ids() {
                if clustering.cluster_of(o) == Some(target) {
                    continue;
                }
                let delta = obj.move_delta(&g, &clustering, o, target);
                let mut after = clustering.clone();
                after.move_object(o, target).unwrap();
                let full = obj.evaluate(&g, &after) - before;
                assert!((delta - full).abs() < 1e-9, "move delta mismatch");
            }
        }
    }

    #[test]
    fn moving_misplaced_point_to_its_blob_improves_cost() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        let clustering = bad_clustering();
        // Object 4 (at (10,10)) sits with the origin blob; moving it to the
        // far blob's cluster must be a large improvement.
        let target = clustering.cluster_of(oid(5)).unwrap();
        let delta = obj.move_delta(&g, &clustering, oid(4), target);
        assert!(delta < -10.0);
    }

    #[test]
    fn degenerate_arguments_return_zero() {
        let g = two_blob_graph();
        let obj = KMeansObjective;
        let clustering = good_clustering();
        let cid = clustering.cluster_ids()[0];
        assert_eq!(obj.merge_delta(&g, &clustering, cid, cid), 0.0);
        assert_eq!(obj.split_delta(&g, &clustering, cid, &BTreeSet::new()), 0.0);
        assert_eq!(
            obj.move_delta(
                &g,
                &clustering,
                oid(1),
                clustering.cluster_of(oid(1)).unwrap()
            ),
            0.0
        );
        assert_eq!(obj.kind(), ObjectiveKind::KMeans);
        assert_eq!(obj.name(), "k-means-sse");
    }

    #[test]
    fn empty_clustering_scores_zero() {
        let g = two_blob_graph();
        assert_eq!(KMeansObjective.evaluate(&g, &Clustering::new()), 0.0);
    }
}
