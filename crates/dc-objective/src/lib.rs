//! # dc-objective
//!
//! Clustering objective functions with cheap *delta* evaluation.
//!
//! Objective-based clustering methods (§3.2 of the DynamicC paper) score a
//! clustering with an objective function and search for a clustering that
//! minimizes it.  DynamicC relies on the objective in two places:
//!
//! 1. the underlying **batch algorithm** (hill-climbing in the paper) uses it
//!    to pick the best improving change at every step, and
//! 2. DynamicC's **verification step** (§5.4, "Avoiding False Positives")
//!    checks every merge/split the ML model proposes against the objective
//!    and discards changes that do not improve it.
//!
//! Both uses evaluate *candidate changes* far more often than whole
//! clusterings, so the [`ObjectiveFunction`] trait exposes `merge_delta`,
//! `split_delta`, and `move_delta` alongside the full `evaluate`.  Every
//! delta is defined as `score(after) − score(before)` and all objectives are
//! costs: **lower is better**, and a change *improves* the clustering when
//! its delta is negative.
//!
//! Implemented objectives:
//!
//! * [`CorrelationObjective`] — the correlation-clustering disagreement cost
//!   of Eq. 1 / Example 4.1.
//! * [`KMeansObjective`] — within-cluster sum of squared Euclidean distances
//!   to the centroid (the k-means objective; k is enforced by the search
//!   procedure, not the objective).
//! * [`DbIndexObjective`] — a Davies–Bouldin index adapted to sparse
//!   similarity graphs, following the record-linkage adaptation of
//!   Gruenheid et al. that the paper evaluates.
//! * [`DensityObjective`] — a density-consistency cost used to verify
//!   DynamicC's proposals when the underlying algorithm is DBSCAN, which has
//!   no objective function of its own (§7.2.1).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod correlation;
pub mod dbindex;
pub mod density;
pub mod kmeans;
pub mod traits;

pub use correlation::CorrelationObjective;
pub use dbindex::DbIndexObjective;
pub use density::DensityObjective;
pub use kmeans::KMeansObjective;
pub use traits::{
    improves, DecisionLocality, ObjectiveFunction, ObjectiveKind, SlowPathObjective,
    IMPROVEMENT_EPSILON,
};
