//! The thread-local metric sink and the cross-thread delta it drains into.

use crate::histogram::Histogram;
use crate::snapshot::TelemetrySnapshot;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Sink> = RefCell::new(Sink::default());
}

#[derive(Debug, Default)]
struct Sink {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

pub(crate) fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

pub(crate) fn set_enabled(on: bool) {
    ENABLED.with(|e| e.set(on));
}

pub(crate) fn counter_add(name: &'static str, delta: u64) {
    SINK.with(|s| {
        *s.borrow_mut().counters.entry(name).or_insert(0) += delta;
    });
}

pub(crate) fn counter_value(name: &str) -> u64 {
    SINK.with(|s| s.borrow().counters.get(name).copied().unwrap_or(0))
}

pub(crate) fn gauge_set(name: &'static str, value: f64) {
    SINK.with(|s| {
        s.borrow_mut().gauges.insert(name, value);
    });
}

pub(crate) fn histogram_record(name: &'static str, ns: u64) {
    SINK.with(|s| {
        s.borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(ns);
    });
}

pub(crate) fn snapshot() -> TelemetrySnapshot {
    SINK.with(|s| {
        let sink = s.borrow();
        TelemetrySnapshot {
            counters: sink
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: sink
                .gauges
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            histograms: sink
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    })
}

pub(crate) fn drain() -> ThreadDelta {
    SINK.with(|s| {
        let sink = std::mem::take(&mut *s.borrow_mut());
        ThreadDelta {
            counters: sink.counters,
            gauges: sink.gauges,
            histograms: sink.histograms,
        }
    })
}

/// One thread's drained sink, ready to be folded into another thread's.
///
/// Produced by [`Registry::drain`](crate::Registry::drain) on a worker
/// thread and consumed by [`ThreadDelta::merge_into_current`] on the
/// spawning thread — the generalization of the old
/// `BuildCounter::merge_from_threads` plumbing to every metric at once.
#[derive(Debug, Default)]
pub struct ThreadDelta {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl ThreadDelta {
    /// Fold this delta into the calling thread's sink: counters add,
    /// histograms merge, gauges overwrite (callers merge worker deltas in
    /// worker order, so the last writer is deterministic).
    pub fn merge_into_current(self) {
        SINK.with(|s| {
            let mut sink = s.borrow_mut();
            for (name, delta) in self.counters {
                *sink.counters.entry(name).or_insert(0) += delta;
            }
            for (name, value) in self.gauges {
                sink.gauges.insert(name, value);
            }
            for (name, hist) in self.histograms {
                sink.histograms.entry(name).or_default().merge(&hist);
            }
        });
    }

    /// Whether the delta carries any recordings at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}
