//! Lightweight span timers feeding the histograms.

use crate::sink;
use std::time::Instant;

/// A started span timer.
///
/// The clock is read at [`Span::start`] and again at [`Span::finish_ns`]
/// **unconditionally** — the elapsed nanoseconds are part of the return
/// value contract, because report fields like `RefineReport::repair_wall_ns`
/// keep reading them with telemetry off.  Only the histogram recording is
/// mode-gated, so the off-mode overhead of a span is two clock reads and a
/// thread-local branch.
///
/// Spans nest lexically: starting a child span inside a parent's lifetime
/// attributes the child's wall time to its own histogram *and* (as part of
/// the enclosing interval) to the parent's, which is what makes a phase
/// breakdown sum comparable against the enclosing round span.
#[must_use = "a span only records when finished"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    started: Instant,
}

impl Span {
    /// Start a span recording into the histogram `name`.
    #[inline]
    pub fn start(name: &'static str) -> Self {
        Span {
            name,
            started: Instant::now(),
        }
    }

    /// Finish the span: record the elapsed nanoseconds into the histogram
    /// (when enabled) and return them (always).
    #[inline]
    pub fn finish_ns(self) -> u64 {
        let ns = self.started.elapsed().as_nanos() as u64;
        if sink::enabled() {
            sink::histogram_record(self.name, ns);
        }
        ns
    }

    /// Finish the span, discarding the elapsed time (pure instrumentation
    /// call sites).
    #[inline]
    pub fn finish(self) {
        let _ = self.finish_ns();
    }
}
