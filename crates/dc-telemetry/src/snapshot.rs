//! Point-in-time captures of a registry and their JSON rendering.

use crate::histogram::Histogram;
use std::collections::BTreeMap;

/// A point-in-time capture of one thread's registry.
///
/// Produced by [`Registry::snapshot`](crate::Registry::snapshot).  All maps
/// are `BTreeMap`s, so iteration (and the JSON dump) is sorted by metric
/// name — part of the deterministic-layout contract.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl TelemetrySnapshot {
    /// Whether the snapshot carries any metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Render the snapshot as a stable JSON document.
    ///
    /// Layout contract (what CI's structural diff relies on):
    ///
    /// * keys sorted, one key-value pair per line, fixed indentation;
    /// * every **timing-derived** (nondeterministic) value lives on a line
    ///   whose key ends in `_ns`; every other line is structural and must be
    ///   bit-identical across runs of a deterministic workload;
    /// * gauges print with six decimal places; histogram quantiles are the
    ///   bucketed values (≤ 12.5 % error, see [`Histogram`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, name, v| {
            out.push_str(&format!("    \"{name}\": {v}"));
        });
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |out, name, v| {
            out.push_str(&format!("    \"{name}\": {v:.6}"));
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |out, name, h| {
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"count\": {},\n",
                    "      \"sum_ns\": {},\n",
                    "      \"min_ns\": {},\n",
                    "      \"max_ns\": {},\n",
                    "      \"p50_ns\": {},\n",
                    "      \"p90_ns\": {},\n",
                    "      \"p99_ns\": {}\n",
                    "    }}"
                ),
                name,
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.p50(),
                h.p90(),
                h.p99(),
            ));
        });
        out.push_str("}\n}\n");
        out
    }
}

/// Write `entries` as `\n<line>,\n<line>...\n  ` between a `{` already
/// written and the `}` the caller writes next; empty maps collapse to `{}`.
fn push_entries<K: AsRef<str>, V>(
    out: &mut String,
    entries: impl ExactSizeIterator<Item = (K, V)>,
    mut write: impl FnMut(&mut String, &str, V),
) {
    let n = entries.len();
    for (i, (name, value)) in entries.enumerate() {
        out.push('\n');
        write(out, name.as_ref(), value);
        out.push_str(if i + 1 == n { "\n  " } else { "," });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_layout_is_stable_and_one_key_per_line() {
        let mut snapshot = TelemetrySnapshot::default();
        snapshot.counters.insert("b.count".into(), 2);
        snapshot.counters.insert("a.count".into(), 1);
        snapshot.gauges.insert("g".into(), 0.5);
        let mut h = Histogram::new();
        h.record(100);
        snapshot.histograms.insert("h".into(), h);
        let json = snapshot.to_json();
        // Sorted keys.
        assert!(json.find("a.count").unwrap() < json.find("b.count").unwrap());
        // Timing values are all on `_ns` lines; every other line is
        // structural.
        for line in json.lines() {
            if line.contains("100") {
                assert!(line.contains("_ns\""), "timing value outside _ns: {line}");
            }
        }
        // The dump is parseable enough for the structural-diff contract:
        // braces balance and each metric line ends with a value.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_maps() {
        let json = TelemetrySnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }
}
