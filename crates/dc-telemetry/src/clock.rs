//! The workspace's single wall-clock authority.
//!
//! Determinism rule R2 (see `dc-lint`) bans raw `Instant::now` reads
//! outside this crate: every timestamp the workspace takes either flows
//! through a [`crate::Span`] (when the interval feeds a histogram) or
//! through these two functions (when code needs a deadline or a bare
//! instant with no metric attached — channel timeouts, batch-formation
//! deadlines, test deadlines).
//!
//! Funnelling the reads through one module keeps the clock auditable: the
//! lint proves nothing else in the tree consults time, so any
//! time-dependent behavior traces back to a `Span` or a call site of these
//! helpers — and a future simulated clock (for deterministic latency tests)
//! has exactly one seam to hook.

use std::time::{Duration, Instant};

/// Read the monotonic clock.
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// A deadline `from_now` in the future, read from the monotonic clock.
#[inline]
pub fn deadline(from_now: Duration) -> Instant {
    now() + from_now
}
