//! Log-bucketed latency histograms (HDR-style, 3 significant bits).
//!
//! Values are nanoseconds (`u64`).  The bucket layout:
//!
//! * values `0..8` get one **exact** bucket each (indices `0..8`);
//! * every power-of-two octave `[2^e, 2^(e+1))` for `e >= 3` is divided into
//!   8 linear sub-buckets of width `2^(e-3)`.
//!
//! A bucket therefore spans at most `lower/8`, so any value reported off a
//! bucket's upper bound overshoots the true value by **at most 12.5 %**
//! (exactly 0 for values below 8 ns).  That bound is what the quantile
//! accessors guarantee and what the property tests pin.
//!
//! Buckets are a sparse `BTreeMap<u32, u64>`, which makes merging two
//! histograms a per-bucket addition — associative and commutative, so
//! merging per-thread histograms in any order equals the histogram of the
//! interleaved stream (also pinned by the property tests).

use std::collections::BTreeMap;

/// Number of linear sub-buckets per power-of-two octave (3 significant
/// bits → relative bucket error ≤ 1/8).
const SUB_BUCKETS: u64 = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;

/// A mergeable log-bucketed histogram of nanosecond values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Sparse bucket index → count of recorded values in the bucket.
    buckets: BTreeMap<u32, u64>,
}

/// The bucket index a value falls into (see the module docs for the layout).
fn bucket_index(value: u64) -> u32 {
    if value < SUB_BUCKETS {
        return value as u32;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS
    let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS - 1)) as u32;
    SUB_BUCKETS as u32 + (exp - SUB_BITS) * SUB_BUCKETS as u32 + sub
}

/// The largest value contained in bucket `index` (inclusive upper bound).
fn bucket_upper(index: u32) -> u64 {
    if index < SUB_BUCKETS as u32 {
        return index as u64;
    }
    let rel = index - SUB_BUCKETS as u32;
    let exp = SUB_BITS + rel / SUB_BUCKETS as u32;
    let sub = (rel % SUB_BUCKETS as u32) as u64;
    let step = 1u64 << (exp - SUB_BITS);
    let lower = (1u64 << exp) + sub * step;
    lower + (step - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(bucket_index(value)).or_insert(0) += 1;
    }

    /// Fold `other` into `self` (per-bucket addition — associative and
    /// commutative, see the module docs).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 while empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 while empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-`ceil(q·count)` value, clamped to the recorded
    /// `max`.  The reported value `r` satisfies `v <= r <= v·1.125 + 1` for
    /// the exact rank value `v` — the documented bucket error.  Returns 0
    /// while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Histogram::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (see [`Histogram::quantile`]).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (see [`Histogram::quantile`]).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 7);
        assert_eq!(h.quantile(1.0 / 8.0), 0, "rank 1 is the exact value 0");
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn bucket_bounds_cover_the_value_range() {
        for v in [0, 1, 7, 8, 9, 63, 64, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
            let index = bucket_index(v);
            assert!(bucket_upper(index) >= v, "upper({index}) < {v}");
            if index > 0 {
                assert!(bucket_upper(index - 1) < v, "bucket below still holds {v}");
            }
        }
    }

    #[test]
    fn quantiles_respect_the_documented_error() {
        let mut h = Histogram::new();
        let values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        for &v in &values {
            h.record(v);
        }
        let exact_p50 = values[499];
        let p50 = h.p50();
        assert!(p50 >= exact_p50);
        assert!(p50 as f64 <= exact_p50 as f64 * 1.125 + 1.0);
    }

    #[test]
    fn merge_equals_interleaved_stream() {
        let values: Vec<u64> = (0..500).map(|i| (i * i) % 10_007).collect();
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, whole);
    }

    #[test]
    fn empty_histogram_reads_as_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
    }
}
