//! # dc-telemetry
//!
//! Hand-rolled, zero-dependency metrics and span timers for the DynamicC
//! serving stack — the observability substrate every other crate in the
//! workspace instruments itself with (vendored-shim philosophy: no crates.io
//! access, so the subset of a metrics library the repo needs is written
//! here, deterministic by construction).
//!
//! ## Model
//!
//! Three metric kinds live in one [`Registry`]:
//!
//! * **counters** — monotonically increasing `u64` sums
//!   ([`Registry::add`]), e.g. fsync counts, WAL bytes appended, boundary
//!   pairs computed;
//! * **gauges** — last-written `f64` values ([`Registry::gauge`]), e.g. the
//!   per-round batch-size imbalance across shards;
//! * **histograms** — log-bucketed latency distributions
//!   ([`Registry::record_ns`], [`Histogram`]) with p50/p90/p99/max within a
//!   documented ≤ 12.5 % bucket error, mergeable across threads.
//!
//! [`Span`] timers feed the histograms: [`Registry::span`] captures a start
//! instant, [`Span::finish_ns`] records the elapsed nanoseconds under the
//! span's name and returns them.  Phase spans nest lexically (route → WAL
//! append → shard apply → boundary exchange → repair → checkpoint), giving a
//! per-round phase breakdown whose sum is comparable against the enclosing
//! round span.
//!
//! ## Thread locality and the off mode
//!
//! The registry is **thread-local**, exactly like the full-build counter it
//! absorbs from `dc-similarity`: recordings go to the calling thread's sink,
//! so exact-count assertions stay correct under `cargo test`'s parallel test
//! execution and no lock is ever taken on the serving hot path.  Fan-out
//! points (the sharded engine's scoped thread pool) propagate the mode to
//! their workers and merge the workers' whole sinks back into the spawning
//! thread ([`Registry::drain`] / [`ThreadDelta::merge_into_current`]) —
//! counters add, histograms merge, gauges last-writer-wins in worker order.
//!
//! Telemetry is **off by default** ([`TelemetryMode::Off`]).  Off-mode cost
//! on the hot path is one thread-local load and a branch per call site — no
//! allocation, no map lookup, no clock read (spans still read the clock,
//! because their elapsed time also feeds existing report fields that must
//! stay populated with telemetry off).  The one exception is the
//! *unconditional* counter ([`Registry::add_always`]) used for the
//! full-aggregate-build count, which equivalence tests assert on without
//! enabling telemetry; full builds are O(E) events, so counting them
//! unconditionally is free by comparison.
//!
//! ## Snapshots
//!
//! [`Registry::snapshot`] captures the calling thread's sink as a
//! [`TelemetrySnapshot`]; [`TelemetrySnapshot::to_json`] renders a stable,
//! `BinCodec`-independent JSON document — sorted keys, one key per line, and
//! the naming convention that **every nondeterministic (timing) value lives
//! on a line whose key ends in `_ns`**, so CI diffs the structural fields of
//! two runs with `grep -vE '_ns"' | diff`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clock;
mod histogram;
mod sink;
mod snapshot;
mod span;

pub use histogram::Histogram;
pub use sink::ThreadDelta;
pub use snapshot::TelemetrySnapshot;
pub use span::Span;

/// Whether telemetry recording is on for the current thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Recording disabled (the default): every mode-gated call site costs
    /// one thread-local load and a branch.
    #[default]
    Off,
    /// Recording enabled: counters, gauges, and histograms accumulate in
    /// the thread's sink.
    On,
}

/// Configuration for the telemetry subsystem.
///
/// The registry itself is ambient (thread-local); the config is how callers
/// express intent at the edges — the `experiments` binary builds one from
/// `--telemetry` and applies it before serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// The recording mode to apply.
    pub mode: TelemetryMode,
}

impl TelemetryConfig {
    /// Config with recording enabled.
    pub fn enabled() -> Self {
        TelemetryConfig {
            mode: TelemetryMode::On,
        }
    }

    /// Apply the config to the current thread (fan-out points propagate it
    /// to their workers).
    pub fn apply(&self) {
        sink::set_enabled(self.mode == TelemetryMode::On);
    }
}

/// Handle to the current thread's metric sink.
///
/// Zero-sized: [`registry()`] hands one out anywhere, and every method
/// resolves to the calling thread's sink.  See the crate docs for the
/// threading model.
#[derive(Debug, Clone, Copy)]
pub struct Registry;

/// The ambient registry handle for the calling thread.
pub fn registry() -> Registry {
    Registry
}

impl Registry {
    /// Is recording enabled on this thread?
    pub fn is_enabled(&self) -> bool {
        sink::enabled()
    }

    /// Enable or disable recording on this thread.
    pub fn set_enabled(&self, enabled: bool) {
        sink::set_enabled(enabled);
    }

    /// Add `delta` to the counter `name` (no-op while disabled).
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if sink::enabled() {
            sink::counter_add(name, delta);
        }
    }

    /// Add `delta` to the counter `name` **regardless of mode**.  Reserved
    /// for counts that existing correctness tests assert on without turning
    /// telemetry on (the full-aggregate-build counter); everything else
    /// should use [`Registry::add`].
    #[inline]
    pub fn add_always(&self, name: &'static str, delta: u64) {
        sink::counter_add(name, delta);
    }

    /// Current value of the counter `name` on this thread (0 if never
    /// written).
    pub fn counter(&self, name: &str) -> u64 {
        sink::counter_value(name)
    }

    /// Set the gauge `name` to `value` (no-op while disabled).
    #[inline]
    pub fn gauge(&self, name: &'static str, value: f64) {
        if sink::enabled() {
            sink::gauge_set(name, value);
        }
    }

    /// Record `ns` into the histogram `name` (no-op while disabled).
    #[inline]
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        if sink::enabled() {
            sink::histogram_record(name, ns);
        }
    }

    /// Start a span timer that records into the histogram `name` when
    /// finished (see [`Span`]).  The clock is read unconditionally so
    /// [`Span::finish_ns`] can feed report fields that must stay populated
    /// with telemetry off; the histogram recording is mode-gated.
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        Span::start(name)
    }

    /// Capture the calling thread's sink as a snapshot (non-destructive).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        sink::snapshot()
    }

    /// Take the calling thread's whole sink, leaving it empty.  Fan-out
    /// points call this on each (fresh) worker thread and merge the deltas
    /// back into the spawning thread; do **not** drain a long-lived thread
    /// mid-measurement — counter deltas observed across a drain are wrong.
    pub fn drain(&self) -> ThreadDelta {
        sink::drain()
    }

    /// Clear the calling thread's sink (tests).
    pub fn reset(&self) {
        let _ = sink::drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_records_nothing_but_always_counter_still_counts() {
        let reg = registry();
        reg.reset();
        reg.set_enabled(false);
        reg.add("t.counter", 3);
        reg.gauge("t.gauge", 1.5);
        reg.record_ns("t.hist", 100);
        assert_eq!(reg.counter("t.counter"), 0);
        let snap = reg.snapshot();
        assert!(snap.is_empty());
        reg.add_always("t.always", 2);
        assert_eq!(reg.counter("t.always"), 2);
        reg.reset();
    }

    #[test]
    fn on_mode_accumulates_and_snapshot_is_nondestructive() {
        let reg = registry();
        reg.reset();
        reg.set_enabled(true);
        reg.add("t.counter", 3);
        reg.add("t.counter", 4);
        reg.gauge("t.gauge", 1.5);
        reg.gauge("t.gauge", 2.5);
        reg.record_ns("t.hist", 100);
        reg.record_ns("t.hist", 200);
        assert_eq!(reg.counter("t.counter"), 7);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("t.counter"), Some(&7));
        assert_eq!(snap.gauges.get("t.gauge"), Some(&2.5));
        assert_eq!(snap.histograms.get("t.hist").unwrap().count(), 2);
        // Snapshot again: unchanged (non-destructive).
        assert_eq!(reg.snapshot().counters.get("t.counter"), Some(&7));
        reg.set_enabled(false);
        reg.reset();
    }

    #[test]
    fn drain_and_merge_move_a_worker_sink_into_the_caller() {
        let reg = registry();
        reg.reset();
        reg.set_enabled(true);
        reg.add("t.main", 1);
        let enabled = reg.is_enabled();
        let delta = std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    let reg = registry();
                    reg.set_enabled(enabled);
                    reg.add("t.main", 10);
                    reg.gauge("t.worker_gauge", 9.0);
                    reg.record_ns("t.worker_hist", 5);
                    reg.drain()
                })
                .join()
                .expect("worker")
        });
        delta.merge_into_current();
        assert_eq!(reg.counter("t.main"), 11);
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.get("t.worker_gauge"), Some(&9.0));
        assert_eq!(snap.histograms.get("t.worker_hist").unwrap().count(), 1);
        reg.set_enabled(false);
        reg.reset();
    }

    #[test]
    fn span_elapsed_is_returned_even_when_disabled() {
        let reg = registry();
        reg.reset();
        reg.set_enabled(false);
        let span = reg.span("t.span");
        let ns = span.finish_ns();
        // Elapsed time flows to the caller regardless of mode…
        assert!(ns < u64::MAX);
        // …but nothing was recorded.
        assert!(reg.snapshot().is_empty());

        reg.set_enabled(true);
        let span = reg.span("t.span");
        let _ = span.finish_ns();
        assert_eq!(reg.snapshot().histograms.get("t.span").unwrap().count(), 1);
        reg.set_enabled(false);
        reg.reset();
    }

    #[test]
    fn config_applies_the_mode() {
        let reg = registry();
        TelemetryConfig::enabled().apply();
        assert!(reg.is_enabled());
        TelemetryConfig::default().apply();
        assert!(!reg.is_enabled());
        reg.reset();
    }
}
