//! Property tests pinning the [`Histogram`] contracts the metric catalog
//! documents:
//!
//! 1. **bucket error** — for any value stream, the bucketed p50/p90/p99 `r`
//!    and the exact sorted-reference quantile `v` at the same rank satisfy
//!    `v <= r <= v * 1.125 + 1` (3 significant bits → ≤ 12.5 % relative
//!    overshoot, +1 for the integer bucket bound);
//! 2. **merge associativity** — splitting a stream across any number of
//!    per-thread histograms and merging them back, in any grouping, equals
//!    the single histogram over the interleaved stream *exactly* (count,
//!    sum, min, max, and every bucket).

use dc_telemetry::Histogram;
use proptest::prelude::*;

/// Exact quantile at the same rank the histogram uses:
/// rank `ceil(q * n)` (1-based) of the sorted stream.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

fn assert_within_bucket_error(reported: u64, exact: u64, label: &str) {
    assert!(
        reported >= exact,
        "{label}: bucketed {reported} undershoots exact {exact}"
    );
    assert!(
        reported as f64 <= exact as f64 * 1.125 + 1.0,
        "{label}: bucketed {reported} overshoots exact {exact} beyond 12.5%"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bucketed_quantiles_track_exact_quantiles(
        values in proptest::collection::vec(0u64..100_000_000, 1..400),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (q, reported, label) in [
            (0.50, h.p50(), "p50"),
            (0.90, h.p90(), "p90"),
            (0.99, h.p99(), "p99"),
        ] {
            let exact = exact_quantile(&sorted, q);
            assert_within_bucket_error(reported, exact, label);
            // Quantiles never exceed the recorded max.
            prop_assert!(reported <= h.max());
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), sorted[0]);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn merging_per_thread_histograms_equals_the_interleaved_stream(
        values in proptest::collection::vec(0u64..10_000_000, 0..300),
        n_threads in 1usize..5,
    ) {
        // The interleaved stream, recorded on one histogram.
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // The same stream striped across `n_threads` per-thread histograms.
        let mut parts = vec![Histogram::new(); n_threads];
        for (i, &v) in values.iter().enumerate() {
            parts[i % n_threads].record(v);
        }

        // Left fold.
        let mut left = Histogram::new();
        for p in &parts {
            left.merge(p);
        }
        prop_assert_eq!(&left, &whole);

        // Reverse-order fold: merge order must not matter.
        let mut right = Histogram::new();
        for p in parts.iter().rev() {
            right.merge(p);
        }
        prop_assert_eq!(&right, &whole);

        // Nested grouping: merge pairs first, then fold the pair results.
        let mut grouped = Histogram::new();
        for chunk in parts.chunks(2) {
            let mut pair = Histogram::new();
            for p in chunk {
                pair.merge(p);
            }
            grouped.merge(&pair);
        }
        prop_assert_eq!(&grouped, &whole);
    }
}
