//! Shared test utilities for the integration-test binaries.
//!
//! The expensive part of every end-to-end test is identical: generate a
//! workload, build the similarity graph, run the batch algorithm, and train
//! DynamicC on the first snapshots.  [`shared_febrl_pipeline`] does that
//! exactly once per test binary (all the pipeline types are `Clone`, so each
//! test receives an independent mutable copy), backed by the canned datasets
//! in [`dynamicc::datagen::fixtures`].  Everything is seeded, so the shared
//! pipeline is identical on every run.

use dynamicc::batch::HillClimbingConfig;
use dynamicc::datagen::fixtures;
use dynamicc::prelude::*;
use std::sync::{Arc, OnceLock};

/// Everything needed to serve rounds after training: the live graph, the
/// last agreed clustering, the trained DynamicC, the remaining snapshots,
/// and the batch reference algorithm.
#[derive(Clone)]
pub struct Pipeline {
    pub graph: SimilarityGraph,
    pub previous: Clustering,
    pub dynamicc: DynamicC,
    pub serve: Vec<Snapshot>,
    pub batch: HillClimbing,
}

/// Build a Febrl pipeline from a workload: train DynamicC on the first 3 of
/// 5 snapshots, leave 2 for serving.
fn build_febrl_pipeline(workload: dynamicc::datagen::DynamicWorkload) -> Pipeline {
    let objective = Arc::new(DbIndexObjective);
    let batch = HillClimbing::with_objective(objective.clone());
    let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &workload.initial);
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let (train, serve) = workload.snapshots.split_at(3);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    Pipeline {
        graph,
        previous: report.final_clustering(&initial),
        dynamicc,
        serve: serve.to_vec(),
        batch,
    }
}

/// A clone of the process-wide trained Febrl pipeline (built on first use).
pub fn shared_febrl_pipeline() -> Pipeline {
    static CACHE: OnceLock<Pipeline> = OnceLock::new();
    CACHE
        .get_or_init(|| build_febrl_pipeline(fixtures::small_febrl_workload()))
        .clone()
}

/// A second trained pipeline over an independently-seeded workload of the
/// same family, so quality assertions are not tied to a single dataset
/// instance (also built only once per test binary).
pub fn shared_febrl_pipeline_alt() -> Pipeline {
    static CACHE: OnceLock<Pipeline> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            build_febrl_pipeline(fixtures::febrl_workload_with_seed(
                fixtures::FIXTURE_SEED_ALT,
            ))
        })
        .clone()
}

/// The k-means counterpart on the canned numeric workload: a fixed-k
/// hill-climbing batch reference and a DynamicC trained on the first 2 of 4
/// snapshots.
pub fn shared_kmeans_pipeline() -> (Pipeline, Arc<KMeansObjective>, usize) {
    static CACHE: OnceLock<(Pipeline, Arc<KMeansObjective>, usize)> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            let k = 8;
            let workload = fixtures::small_access_workload();
            let objective = Arc::new(KMeansObjective);
            let batch = HillClimbing::new(
                objective.clone(),
                HillClimbingConfig {
                    fixed_k: Some(k),
                    ..HillClimbingConfig::default()
                },
            );
            let mut graph = SimilarityGraph::build(
                GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
                &workload.initial,
            );
            let initial = batch.cluster(&graph).clustering;
            let mut dynamicc = DynamicC::with_objective(objective.clone());
            let (train, serve) = workload.snapshots.split_at(2);
            let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
            let pipeline = Pipeline {
                graph,
                previous: report.final_clustering(&initial),
                dynamicc,
                serve: serve.to_vec(),
                batch,
            };
            (pipeline, objective, k)
        })
        .clone()
}
