//! Cross-crate integration tests: the full train-then-serve pipeline on
//! synthetic workloads, and the qualitative claims of the evaluation section
//! (DynamicC ≥ Naive in quality, DynamicC tracks the batch algorithm, all
//! methods keep the clustering a valid partition).
//!
//! The expensive generate→cluster→train prefix is shared: every test clones
//! the process-wide pipeline from [`common`] instead of rebuilding it.

mod common;

use common::{shared_febrl_pipeline, shared_febrl_pipeline_alt};
use dynamicc::prelude::*;
use std::sync::Arc;

#[test]
fn dynamicc_stays_close_to_the_batch_algorithm() {
    let mut p = shared_febrl_pipeline();
    assert!(p.dynamicc.is_trained());
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        let served = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        served.check_invariants().unwrap();
        let reference = p.batch.recluster(&p.graph, &p.previous).clustering;
        let q = quality_report(&served, &reference);
        assert!(
            q.f1 > 0.85,
            "snapshot {}: F1 vs batch dropped to {:.3}",
            snapshot.index,
            q.f1
        );
        p.previous = reference;
    }
}

#[test]
fn dynamicc_beats_or_matches_naive_on_quality() {
    // The alt pipeline keeps this quality claim on an independently seeded
    // dataset instead of re-asserting over the canonical fixture.
    let mut p = shared_febrl_pipeline_alt();
    let mut naive = Naive::new(NaiveConfig {
        join_threshold: 0.5,
    });
    let mut naive_f1_sum = 0.0;
    let mut dync_f1_sum = 0.0;
    let mut rounds = 0.0;
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        let reference = p.batch.recluster(&p.graph, &p.previous).clustering;
        let naive_result = naive.recluster(&p.graph, &p.previous, &snapshot.batch);
        let dync_result = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        naive_f1_sum += quality_report(&naive_result, &reference).f1;
        dync_f1_sum += quality_report(&dync_result, &reference).f1;
        rounds += 1.0;
        p.previous = reference;
    }
    assert!(
        dync_f1_sum / rounds >= naive_f1_sum / rounds - 1e-9,
        "DynamicC ({:.3}) should not trail Naive ({:.3})",
        dync_f1_sum / rounds,
        naive_f1_sum / rounds
    );
}

#[test]
fn all_incremental_methods_preserve_partition_invariants() {
    let mut p = shared_febrl_pipeline_alt();
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let mut methods: Vec<Box<dyn IncrementalClusterer>> = vec![
        Box::new(Naive::new(NaiveConfig::default())),
        Box::new(Greedy::with_objective(objective)),
    ];
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        for method in methods.iter_mut() {
            let result = method.recluster(&p.graph, &p.previous, &snapshot.batch);
            result.check_invariants().unwrap();
            assert_eq!(result.object_count(), p.graph.object_count());
        }
        let result = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        result.check_invariants().unwrap();
        assert_eq!(result.object_count(), p.graph.object_count());
        p.previous = result;
    }
}

#[test]
fn ground_truth_quality_is_high_on_clean_duplicates() {
    // On a cleanly separated duplicate dataset the whole pipeline should
    // recover essentially the true entities.
    let mut p = shared_febrl_pipeline();
    let mut last = p.previous.clone();
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        last = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        p.previous = last.clone();
    }
    // Build the entity ground truth restricted to live objects.
    let mut live = Dataset::new();
    for o in p.graph.object_ids() {
        live.insert_with_id(o, p.graph.record(o).unwrap().clone())
            .unwrap();
    }
    let truth = ground_truth(&live);
    let q = quality_report(&last, &truth);
    assert!(q.f1 > 0.8, "entity F1 too low: {q:?}");
}

#[test]
fn shared_pipeline_clones_are_independent() {
    // Mutating one test's clone must not leak into the cached pipeline.
    let mut a = shared_febrl_pipeline();
    let before = a.graph.object_count();
    a.graph.apply_batch(&a.serve[0].batch);
    assert_ne!(a.graph.object_count(), before);
    let b = shared_febrl_pipeline();
    assert_eq!(b.graph.object_count(), before);
    assert_eq!(b.previous.object_count(), before);
}

#[test]
fn numeric_kmeans_pipeline_round_trips() {
    let (mut p, objective, k) = common::shared_kmeans_pipeline();
    assert_eq!(p.previous.cluster_count(), k);
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        let served = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        served.check_invariants().unwrap();
        let batch_result = p.batch.recluster(&p.graph, &p.previous).clustering;
        // DynamicC's k-means cost must stay within 25% of the batch cost.
        let served_cost = objective.evaluate(&p.graph, &served);
        let batch_cost = objective.evaluate(&p.graph, &batch_result);
        assert!(
            served_cost <= batch_cost * 1.25 + 1e-9,
            "k-means cost {served_cost:.2} vs batch {batch_cost:.2}"
        );
        p.previous = served;
    }
}
