//! Cross-crate integration tests: the full train-then-serve pipeline on
//! synthetic workloads, and the qualitative claims of the evaluation section
//! (DynamicC ≥ Naive in quality, DynamicC tracks the batch algorithm, all
//! methods keep the clustering a valid partition).

use dynamicc::prelude::*;
use std::sync::Arc;

struct Pipeline {
    graph: SimilarityGraph,
    previous: Clustering,
    dynamicc: DynamicC,
    serve: Vec<Snapshot>,
    batch: HillClimbing,
}

/// Build a small Febrl-like record-linkage pipeline: train DynamicC on the
/// first rounds, return everything needed to serve the remaining rounds.
fn febrl_pipeline(seed: u64) -> Pipeline {
    let full = FebrlLikeGenerator {
        originals: 70,
        duplicates_per_original: 1.8,
        seed,
        ..FebrlLikeGenerator::default()
    }
    .generate();
    let workload = DynamicWorkload::generate(
        &full,
        WorkloadConfig {
            initial_fraction: 0.35,
            snapshots: 5,
            seed: seed ^ 0xABCD,
            ..WorkloadConfig::default()
        },
    );
    let objective = Arc::new(DbIndexObjective);
    let batch = HillClimbing::with_objective(objective.clone());
    let mut graph = SimilarityGraph::build(GraphConfig::textual_febrl(0.6), &workload.initial);
    let initial = batch.cluster(&graph).clustering;
    let mut dynamicc = DynamicC::with_objective(objective);
    let (train, serve) = workload.snapshots.split_at(3);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    Pipeline {
        graph,
        previous: report.final_clustering(&initial),
        dynamicc,
        serve: serve.to_vec(),
        batch,
    }
}

#[test]
fn dynamicc_stays_close_to_the_batch_algorithm() {
    let mut p = febrl_pipeline(3);
    assert!(p.dynamicc.is_trained());
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        let served = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        served.check_invariants().unwrap();
        let reference = p.batch.recluster(&p.graph, &p.previous).clustering;
        let q = quality_report(&served, &reference);
        assert!(
            q.f1 > 0.85,
            "snapshot {}: F1 vs batch dropped to {:.3}",
            snapshot.index,
            q.f1
        );
        p.previous = reference;
    }
}

#[test]
fn dynamicc_beats_or_matches_naive_on_quality() {
    let mut p = febrl_pipeline(11);
    let mut naive = Naive::new(NaiveConfig { join_threshold: 0.5 });
    let mut naive_f1_sum = 0.0;
    let mut dync_f1_sum = 0.0;
    let mut rounds = 0.0;
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        let reference = p.batch.recluster(&p.graph, &p.previous).clustering;
        let naive_result = naive.recluster(&p.graph, &p.previous, &snapshot.batch);
        let dync_result = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        naive_f1_sum += quality_report(&naive_result, &reference).f1;
        dync_f1_sum += quality_report(&dync_result, &reference).f1;
        rounds += 1.0;
        p.previous = reference;
    }
    assert!(
        dync_f1_sum / rounds >= naive_f1_sum / rounds - 1e-9,
        "DynamicC ({:.3}) should not trail Naive ({:.3})",
        dync_f1_sum / rounds,
        naive_f1_sum / rounds
    );
}

#[test]
fn all_incremental_methods_preserve_partition_invariants() {
    let mut p = febrl_pipeline(29);
    let objective: Arc<dyn ObjectiveFunction> = Arc::new(DbIndexObjective);
    let mut methods: Vec<Box<dyn IncrementalClusterer>> = vec![
        Box::new(Naive::new(NaiveConfig::default())),
        Box::new(Greedy::with_objective(objective)),
    ];
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        for method in methods.iter_mut() {
            let result = method.recluster(&p.graph, &p.previous, &snapshot.batch);
            result.check_invariants().unwrap();
            assert_eq!(result.object_count(), p.graph.object_count());
        }
        let result = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        result.check_invariants().unwrap();
        assert_eq!(result.object_count(), p.graph.object_count());
        p.previous = result;
    }
}

#[test]
fn ground_truth_quality_is_high_on_clean_duplicates() {
    // On a cleanly separated duplicate dataset the whole pipeline should
    // recover essentially the true entities.
    let mut p = febrl_pipeline(47);
    let mut last = p.previous.clone();
    for snapshot in &p.serve {
        p.graph.apply_batch(&snapshot.batch);
        last = p.dynamicc.recluster(&p.graph, &p.previous, &snapshot.batch);
        p.previous = last.clone();
    }
    // Build the entity ground truth restricted to live objects.
    let mut live = Dataset::new();
    for o in p.graph.object_ids() {
        live.insert_with_id(o, p.graph.record(o).unwrap().clone()).unwrap();
    }
    let truth = ground_truth(&live);
    let q = quality_report(&last, &truth);
    assert!(q.f1 > 0.8, "entity F1 too low: {q:?}");
}

#[test]
fn numeric_kmeans_pipeline_round_trips() {
    use dynamicc::batch::HillClimbingConfig;
    let k = 8;
    let full = AccessLikeGenerator {
        clusters: k,
        points_per_cluster: 30,
        ..AccessLikeGenerator::default()
    }
    .generate();
    let workload = DynamicWorkload::generate(
        &full,
        WorkloadConfig {
            initial_fraction: 0.4,
            snapshots: 4,
            ..WorkloadConfig::default()
        },
    );
    let objective = Arc::new(KMeansObjective);
    let batch = HillClimbing::new(
        objective.clone(),
        HillClimbingConfig {
            fixed_k: Some(k),
            ..HillClimbingConfig::default()
        },
    );
    let mut graph = SimilarityGraph::build(
        GraphConfig::numeric_euclidean(1.8, 4.0, 3, 0.25),
        &workload.initial,
    );
    let initial = batch.cluster(&graph).clustering;
    assert_eq!(initial.cluster_count(), k);

    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let (train, serve) = workload.snapshots.split_at(2);
    let report = train_on_workload(&mut dynamicc, &mut graph, &initial, train, &batch);
    let mut previous = report.final_clustering(&initial);
    for snapshot in serve {
        graph.apply_batch(&snapshot.batch);
        let served = dynamicc.recluster(&graph, &previous, &snapshot.batch);
        served.check_invariants().unwrap();
        let batch_result = batch.recluster(&graph, &previous).clustering;
        // DynamicC's k-means cost must stay within 25% of the batch cost.
        let served_cost = objective.evaluate(&graph, &served);
        let batch_cost = objective.evaluate(&graph, &batch_result);
        assert!(
            served_cost <= batch_cost * 1.25 + 1e-9,
            "k-means cost {served_cost:.2} vs batch {batch_cost:.2}"
        );
        previous = served;
    }
}
