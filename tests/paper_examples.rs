//! Integration tests that walk through the paper's worked examples using
//! only the public facade API.

use dynamicc::prelude::*;
use dynamicc::similarity::fixtures;
use std::sync::Arc;

/// Example 4.1: the correlation objective of the motivating example.
#[test]
fn example_4_1_objective_values() {
    let graph = fixtures::figure2_graph();
    let objective = CorrelationObjective;
    let singletons = Clustering::singletons((1..=7).map(ObjectId::new));
    assert!((objective.evaluate(&graph, &singletons) - 5.2).abs() < 1e-9);

    let mut after_first_merge = singletons.clone();
    let c1 = after_first_merge.cluster_of(ObjectId::new(1)).unwrap();
    let c7 = after_first_merge.cluster_of(ObjectId::new(7)).unwrap();
    after_first_merge.merge(c1, c7).unwrap();
    assert!((objective.evaluate(&graph, &after_first_merge) - 4.2).abs() < 1e-9);
}

/// Example 4.2: the cross-round transformation list from Figure 1's old
/// clustering to Figure 2's new clustering consists of two merges and one
/// split.
#[test]
fn example_4_2_transformation_list() {
    let old = fixtures::figure1_old_clustering();
    let new = fixtures::figure2_clustering();
    let trace = dynamicc::evolution::derive_transformation(
        &old,
        &new,
        &[ObjectId::new(6), ObjectId::new(7)],
    );
    assert_eq!(trace.merge_count(), 2);
    assert_eq!(trace.split_count(), 1);
}

/// The motivating scenario of §2.1 end to end: an (untrained) DynamicC with
/// objective verification reacts to the arrival of r6 and r7 without ever
/// producing a clustering worse than doing nothing.
#[test]
fn motivating_example_never_degrades_quality() {
    let graph = fixtures::figure2_graph();
    let old = fixtures::figure1_old_clustering();
    let objective = Arc::new(CorrelationObjective);

    let mut batch = OperationBatch::new();
    for id in [6u64, 7] {
        batch.push(Operation::Add {
            id: ObjectId::new(id),
            record: fixtures::fixture_record(id),
        });
    }

    let mut dynamicc = DynamicC::with_objective(objective.clone());
    let result = dynamicc.recluster(&graph, &old, &batch);
    result.check_invariants().unwrap();
    assert_eq!(result.object_count(), 7);

    let mut do_nothing = old.clone();
    do_nothing.create_cluster([ObjectId::new(6)]).unwrap();
    do_nothing.create_cluster([ObjectId::new(7)]).unwrap();
    assert!(objective.evaluate(&graph, &result) <= objective.evaluate(&graph, &do_nothing) + 1e-9);
}

/// Figure 3's arithmetic: the confusion-matrix metrics of the worked example.
#[test]
fn figure_3_metric_arithmetic() {
    let m = dynamicc::ml::ConfusionMatrix {
        true_negatives: 8,
        false_positives: 15,
        false_negatives: 1,
        true_positives: 120,
    };
    assert!((m.accuracy() - 0.889).abs() < 1e-3);
    assert!((m.precision() - 0.889).abs() < 1e-3);
    assert!((m.recall() - 0.992).abs() < 1e-3);
}
